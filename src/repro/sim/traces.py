"""Trace-driven simulation (Section VI-B substitution).

The paper evaluates Smart EXP3 against Greedy on 4 pairs of simultaneously
collected bit-rate traces (a public WiFi network and a cellular network, 25
minutes each).  The original packet captures are not available, so
:class:`SyntheticTraceLibrary` generates 4 trace pairs with the qualitative
properties the paper describes:

* bit rates fluctuate, the cellular trace more than the WiFi one;
* in **trace 2** the cellular network is better than WiFi in every slot;
* in traces 1, 3 and 4 the better network changes over time, so a policy that
  locks onto one network leaves goodput on the table.

:class:`TraceGainModel` plugs a trace pair into the standard simulator: a
single device chooses between the two "networks" and observes the traced rate
of its choice (no sharing, exactly as in the paper's single-device replay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.game.device import Device
from repro.game.gain import GainModel
from repro.game.network import Network, NetworkType
from repro.sim.delay import EmpiricalDelayModel
from repro.sim.mobility import CoverageMap
from repro.sim.scenario import DeviceSpec, Scenario

#: Network id used for the WiFi trace within trace-driven scenarios.
WIFI_ID = 0
#: Network id used for the cellular trace within trace-driven scenarios.
CELLULAR_ID = 1
#: 25 minutes of 15-second slots.
TRACE_SLOTS = 100


@dataclass(frozen=True)
class TracePair:
    """Simultaneous per-slot bit rates (Mbps) of a WiFi and a cellular network.

    The traces are ingested straight into one columnar ``(2, num_slots)``
    block (:attr:`rates_matrix`, rows indexed by network id) — the same
    struct-of-arrays layout the result path uses — so per-slot lookups and
    whole-trace reductions are array operations, not per-record objects.
    """

    name: str
    wifi_mbps: np.ndarray
    cellular_mbps: np.ndarray

    def __post_init__(self) -> None:
        wifi = np.asarray(self.wifi_mbps, dtype=float)
        cellular = np.asarray(self.cellular_mbps, dtype=float)
        if wifi.ndim != 1 or cellular.ndim != 1:
            raise ValueError("traces must be 1-D arrays")
        if wifi.size != cellular.size:
            raise ValueError("both traces must have the same number of slots")
        if wifi.size == 0:
            raise ValueError("traces must not be empty")
        if np.any(wifi < 0) or np.any(cellular < 0):
            raise ValueError("bit rates must be non-negative")
        matrix = np.empty((2, wifi.size), dtype=float)
        matrix[WIFI_ID] = wifi
        matrix[CELLULAR_ID] = cellular
        object.__setattr__(self, "wifi_mbps", matrix[WIFI_ID])
        object.__setattr__(self, "cellular_mbps", matrix[CELLULAR_ID])
        object.__setattr__(self, "rates_matrix", matrix)

    #: ``(2, num_slots)`` columnar block; row ``network_id`` holds that
    #: network's per-slot rates (rows are views shared with ``wifi_mbps`` /
    #: ``cellular_mbps``).
    rates_matrix: np.ndarray = field(init=False, repr=False)

    @property
    def num_slots(self) -> int:
        return int(self.rates_matrix.shape[1])

    @property
    def max_rate_mbps(self) -> float:
        return float(np.max(self.rates_matrix))

    def rate(self, network_id: int, slot: int) -> float:
        """Traced rate of ``network_id`` at 1-based ``slot`` (clamped to the end)."""
        if network_id not in (WIFI_ID, CELLULAR_ID):
            raise KeyError(f"trace pair has no network {network_id}")
        index = min(max(slot - 1, 0), self.num_slots - 1)
        return float(self.rates_matrix[network_id, index])

    def best_single_network_download_mb(self, slot_duration_s: float = 15.0) -> float:
        """Download (MB) of clairvoyantly staying on the single best network."""
        totals = self.rates_matrix.sum(axis=1) * slot_duration_s / 8.0
        return float(np.max(totals))


def _smooth_walk(
    rng: np.random.Generator,
    slots: int,
    base: float,
    amplitude: float,
    noise: float,
    period: float,
    phase: float,
    floor: float = 0.2,
) -> np.ndarray:
    """A positive, slowly varying rate series: sinusoid + random walk + noise."""
    t = np.arange(slots)
    seasonal = amplitude * np.sin(2.0 * np.pi * t / period + phase)
    walk = np.cumsum(rng.normal(0.0, noise, size=slots))
    walk -= np.linspace(0.0, walk[-1], slots)  # keep the walk mean-reverting
    jitter = rng.normal(0.0, noise, size=slots)
    return np.clip(base + seasonal + walk + jitter, floor, None)


def _regime_offsets(slots: int, boundaries: tuple[float, ...], levels: tuple[float, ...]) -> np.ndarray:
    """Piecewise-constant offsets: ``boundaries`` are fractions of the horizon.

    ``levels`` must have one more entry than ``boundaries``; the offset takes
    ``levels[i]`` between consecutive boundaries.  This creates the prolonged
    periods in which one network clearly dominates the other, which is what
    makes lock-in policies (Greedy) lose on traces 1, 3 and 4.
    """
    if len(levels) != len(boundaries) + 1:
        raise ValueError("levels must have exactly one more entry than boundaries")
    edges = [0] + [int(round(b * slots)) for b in boundaries] + [slots]
    offsets = np.zeros(slots, dtype=float)
    for level, start, end in zip(levels, edges[:-1], edges[1:]):
        offsets[start:end] = level
    return offsets


class SyntheticTraceLibrary:
    """Generates the 4 trace pairs used by the Table VI / Fig. 12 experiments."""

    def __init__(self, num_slots: int = TRACE_SLOTS, seed: int = 2018) -> None:
        if num_slots < 10:
            raise ValueError("num_slots must be >= 10")
        self.num_slots = num_slots
        self.seed = seed

    def trace(self, index: int) -> TracePair:
        """Trace pair ``index`` in 1..4."""
        if index not in (1, 2, 3, 4):
            raise ValueError("trace index must be in 1..4")
        rng = np.random.default_rng(self.seed + index)
        slots = self.num_slots
        if index == 1:
            # WiFi better at first, cellular clearly better in the middle third.
            wifi = _smooth_walk(rng, slots, base=3.2, amplitude=0.6, noise=0.25, period=45, phase=0.0)
            cellular = _smooth_walk(rng, slots, base=2.0, amplitude=0.8, noise=0.45, period=30, phase=2.0)
            cellular += _regime_offsets(slots, (0.35, 0.75), (0.0, 3.5, 0.3))
        elif index == 2:
            # Cellular strictly better than WiFi throughout.
            wifi = _smooth_walk(rng, slots, base=2.2, amplitude=0.6, noise=0.2, period=50, phase=1.0)
            cellular = wifi + _smooth_walk(rng, slots, base=2.5, amplitude=0.8, noise=0.3, period=35, phase=0.5)
        elif index == 3:
            # Alternating dominance: cellular strong early and late, WiFi mid-run.
            wifi = _smooth_walk(rng, slots, base=2.2, amplitude=0.7, noise=0.3, period=35, phase=1.5)
            wifi += _regime_offsets(slots, (0.3, 0.7), (0.0, 3.0, 0.0))
            cellular = _smooth_walk(rng, slots, base=3.0, amplitude=1.0, noise=0.5, period=25, phase=4.0)
        else:
            # WiFi strong in the first half, cellular strong in the second half.
            wifi = _smooth_walk(rng, slots, base=2.4, amplitude=0.7, noise=0.3, period=55, phase=0.8)
            wifi += _regime_offsets(slots, (0.5,), (2.2, 0.0))
            cellular = _smooth_walk(rng, slots, base=2.2, amplitude=0.9, noise=0.5, period=28, phase=2.8)
            cellular += _regime_offsets(slots, (0.5,), (0.0, 2.6))
        return TracePair(name=f"trace{index}", wifi_mbps=wifi, cellular_mbps=cellular)

    def all_traces(self) -> list[TracePair]:
        return [self.trace(i) for i in (1, 2, 3, 4)]


class TraceGainModel(GainModel):
    """Gain model that replays a trace pair, ignoring sharing (single device)."""

    def __init__(self, trace: TracePair) -> None:
        self.trace = trace

    def rates(
        self,
        network: Network,
        client_ids: tuple[int, ...],
        slot: int,
        rng: np.random.Generator,
    ) -> Mapping[int, float]:
        rate = self.trace.rate(network.network_id, slot)
        return {device_id: rate for device_id in client_ids}


def trace_scenario(
    trace: TracePair,
    policy: str,
    policy_kwargs: Mapping | None = None,
    slot_duration_s: float = 15.0,
) -> Scenario:
    """Single-device scenario replaying ``trace`` (used by Table VI / Fig. 12)."""
    networks = [
        Network(network_id=WIFI_ID, bandwidth_mbps=float(np.max(trace.wifi_mbps)),
                network_type=NetworkType.WIFI, name="public-wifi"),
        Network(network_id=CELLULAR_ID, bandwidth_mbps=float(np.max(trace.cellular_mbps)),
                network_type=NetworkType.CELLULAR, name="cellular"),
    ]
    coverage = CoverageMap.single_area([WIFI_ID, CELLULAR_ID])
    device = Device(device_id=0)
    return Scenario(
        name=f"trace_driven_{trace.name}",
        networks=networks,
        device_specs=[DeviceSpec(device=device, policy=policy, policy_kwargs=dict(policy_kwargs or {}))],
        coverage=coverage,
        gain_model=TraceGainModel(trace),
        delay_model=EmpiricalDelayModel(),
        horizon_slots=trace.num_slots,
        slot_duration_s=slot_duration_s,
        max_rate_mbps=trace.max_rate_mbps,
    )
