"""Sharded population engine: device-axis sharding for million-device runs.

The congestion game's structure makes the device axis embarrassingly
shardable: per-device equal-share rates (and the Full Information
counterfactuals) depend on the other devices only through the per-network
occupancy vector, so ``K`` shards can run the full batched-kernel and
churn machinery locally and synchronise with one ``(networks,)``-sized
all-reduce per slot.

Layers:

* :mod:`repro.sim.sharded.plan` — :class:`ShardPlan` /
  :class:`ShardSpec`: contiguous device→shard assignment with globally
  derived per-device seed positions and policy ranks (results are
  shard-count invariant), plus :class:`HomogeneousPopulation` for
  generative megascale populations that never materialise in full.
* :mod:`repro.sim.sharded.engine` — :class:`ShardEngine`: the per-shard
  lockstep state machine (selection → occupancy → rates/feedback).
* :mod:`repro.sim.sharded.bus` — :class:`SerialBus` (in-process
  debugging/equivalence mode) and :class:`SharedMemoryBus` (double-banked
  shared-memory rings + one bounded barrier wait per exchange).
* :mod:`repro.sim.sharded.checkpoint` — :class:`CheckpointConfig` /
  :class:`ResumeState`: periodic atomic shard-state snapshots with a
  checksummed manifest, and bit-exact resume from the last commit.
* :mod:`repro.sim.sharded.faults` — :class:`SupervisionConfig` (barrier
  timeouts, bounded checkpoint-based restarts), :class:`FaultPlan` fault
  injection, and the failure vocabulary (:class:`ShardFailureError`,
  :class:`WorkerCrashError`, :class:`BusTimeoutError`).
* :mod:`repro.sim.sharded.executor` — :class:`ShardedSlotExecutor`, the
  ``"sharded"`` backend: gather/stitch for full results, windowed in-shard
  reduction for bounded-memory megascale runs, supervision loop on top.
"""

from repro.sim.sharded.bus import SerialBus, SharedMemoryBus
from repro.sim.sharded.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    ResumeState,
    latest_checkpoint,
)
from repro.sim.sharded.engine import ShardEngine
from repro.sim.sharded.executor import ShardedSlotExecutor
from repro.sim.sharded.faults import (
    BusTimeoutError,
    CorruptCheckpoint,
    DelayExchange,
    FaultPlan,
    InjectedFault,
    KillWorker,
    ShardFailureError,
    SupervisionConfig,
    WorkerCrashError,
)
from repro.sim.sharded.plan import (
    HomogeneousPopulation,
    ShardPlan,
    ShardSpec,
    shard_boundaries,
)

__all__ = [
    "BusTimeoutError",
    "CheckpointConfig",
    "CheckpointError",
    "CorruptCheckpoint",
    "DelayExchange",
    "FaultPlan",
    "HomogeneousPopulation",
    "InjectedFault",
    "KillWorker",
    "ResumeState",
    "SerialBus",
    "ShardEngine",
    "ShardFailureError",
    "ShardPlan",
    "ShardSpec",
    "ShardedSlotExecutor",
    "SharedMemoryBus",
    "SupervisionConfig",
    "WorkerCrashError",
    "latest_checkpoint",
    "shard_boundaries",
]
