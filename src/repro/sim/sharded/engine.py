"""The per-shard lockstep execution engine.

A :class:`ShardEngine` owns one shard of the device population and advances
it slot by slot through a three-phase protocol driven by the executor (or a
worker process):

1. :meth:`begin` — apply the slot's topology events, run policy selection
   (batched kernels / scalar fallback / frozen rows, exactly the vectorized
   backend's machinery) and return the shard's *local* per-network occupancy
   counts.
2. *(all-reduce outside the engine: local counts sum to global counts)*
3. :meth:`observe` — consume the **global** counts: equal-share rates and
   recording for the shard's active rows, switch detection; returns the
   shard's switching rows so the caller can resolve switching delays (drawn
   locally for stream-free delay models, or via the replicated
   global-order draw for stochastic ones — see
   :mod:`repro.sim.sharded.executor`).
4. :meth:`complete` — charge the delays, feed realised gains back into the
   kernels / scalar policies, record probabilities.

The congestion game makes this exchange sufficient: per-device equal-share
rates (and the Full Information counterfactuals) depend on the choices of
other devices only through the ``(networks,)``-sized occupancy vector, so a
shard never needs to see a peer shard's per-device state.

Bit-exactness with the vectorized backend holds because every RNG stream is
consumed identically: per-device policy streams come from the same globally
derived seeds (:func:`~repro.sim.backends.base.derive_run_streams`), kernels
replicate the scalar draws row for row, and the environment stream is either
untouched (stream-free delay models, equal-share physics draws nothing) or
replayed in the same global ascending-device order on every shard's replica.
Unlike the vectorized executor there are no multi-slot epoch fast paths —
lockstep synchronisation is per slot by construction — so the engine is the
per-slot counterpart of :class:`~repro.sim.backends.vectorized.VectorizedSlotExecutor`
(see that module for the semantics the membership-edit code mirrors).
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

import repro.algorithms.kernels  # noqa: F401  (registers the built-in kernels)
from repro.algorithms.base import Observation
from repro.algorithms.kernels.base import SlotFeedback
from repro.sim.backends.base import SlotRecorder, TopologyPlan, build_policies
from repro.sim.backends.membership import FROZEN as _FROZEN, MembershipState
from repro.sim.metrics import NO_NETWORK, SimulationResult
from repro.sim.sharded.plan import ShardSpec


_U64 = (1 << 64) - 1

#: Uniform doubles buffered per kernel draw window (mirrors the vectorized
#: backend's budget): caps the window so a large shard buffers a few slots
#: of pre-drawn uniforms, not the whole horizon.
_DRAW_BUDGET = 4_000_000


def _pack_rng_states(policies) -> tuple:
    """Pack per-row bit-generator states into columnar arrays.

    The default generator (PCG64) carries a 128-bit state and a 128-bit
    increment: six unsigned-64 columns hold an entire kernel group, which
    pickles orders of magnitude faster than one nested state dict per row.
    Mixed or non-PCG64 groups fall back to the raw per-row dicts.
    """
    bitgens = [p.rng.bit_generator for p in policies]
    if not all(type(bg) is np.random.PCG64 for bg in bitgens):
        return ("raw", [bg.state for bg in bitgens])
    n = len(bitgens)
    columns = np.empty((6, n), dtype=np.uint64)
    for i, bg in enumerate(bitgens):
        d = bg.state
        s = d["state"]["state"]
        inc = d["state"]["inc"]
        columns[0, i] = s >> 64
        columns[1, i] = s & _U64
        columns[2, i] = inc >> 64
        columns[3, i] = inc & _U64
        columns[4, i] = d["has_uint32"]
        columns[5, i] = d["uinteger"]
    return ("pcg64", columns)


def _iter_rng_states(packed: tuple):
    """Yield one bit-generator state dict per row from a packed tuple."""
    tag, payload = packed
    if tag == "raw":
        yield from payload
        return
    state_hi, state_lo, inc_hi, inc_lo, has_uint32, uinteger = payload
    for i in range(payload.shape[1]):
        yield {
            "bit_generator": "PCG64",
            "state": {
                "state": (int(state_hi[i]) << 64) | int(state_lo[i]),
                "inc": (int(inc_hi[i]) << 64) | int(inc_lo[i]),
            },
            "has_uint32": int(has_uint32[i]),
            "uinteger": int(uinteger[i]),
        }


class _RecorderStub:
    """Placeholder for a freshly-reset recorder inside a checkpoint pickle.

    When a checkpoint lands right after a window flush, the recorder blocks
    have just been zeroed (:meth:`ShardEngine.reset_window`), so the
    snapshot stores this stub instead of tens of megabytes of zeros and the
    restore path rebuilds an identical empty :class:`SlotRecorder`.
    """

    __slots__ = ("width", "record_probabilities", "dtype")

    def __init__(
        self, width: int, record_probabilities: bool, dtype: str
    ) -> None:
        self.width = width
        self.record_probabilities = record_probabilities
        self.dtype = dtype

    def __getstate__(self) -> tuple:
        return (self.width, self.record_probabilities, self.dtype)

    def __setstate__(self, state: tuple) -> None:
        self.width, self.record_probabilities, self.dtype = state


class ShardEngine:
    """One shard's devices, policies, topology and recorder."""

    def __init__(
        self,
        spec: ShardSpec,
        policy_seeds: np.ndarray,
        seed_label: int,
        num_slots: int,
        record_probabilities: bool = True,
        dtype: str = "float64",
        window: int | None = None,
        use_kernels: bool = True,
    ) -> None:
        scenario = spec.materialize()
        self.spec = spec
        self.scenario = scenario
        self.seed_label = seed_label
        self.num_slots = num_slots
        #: Offset of this shard's row 0 in the global row order.
        self.row_offset = spec.lo
        #: Kept for the columnar checkpoint codec: restoring a snapshot
        #: rebuilds the scalar policy objects of kernel-resident rows from
        #: these seeds instead of pickling 10^5 tiny Python objects.
        self._policy_seeds = np.asarray(policy_seeds)
        self.runtimes = build_policies(scenario, policy_seeds, spec.policy_ranks)
        self.device_ids = tuple(sorted(self.runtimes))
        self.runtimes_by_row = [self.runtimes[d] for d in self.device_ids]
        self.policies_by_row = [rt.policy for rt in self.runtimes_by_row]
        num_devices = len(self.device_ids)

        self.network_order = tuple(sorted(scenario.network_map))
        self.num_networks = len(self.network_order)
        self.net_ids = np.asarray(self.network_order, dtype=np.int64)
        self.bandwidths = np.asarray(
            [scenario.network_map[k].bandwidth_mbps for k in self.network_order],
            dtype=float,
        )
        self.scale_ref = float(scenario.scale_reference_mbps)

        self.window = min(int(window), num_slots) if window else None
        width = self.window or num_slots
        self.recorder = SlotRecorder(
            self.device_ids,
            self.network_order,
            width,
            record_probabilities,
            dtype,
        )
        if window and self.recorder.probabilities is not None:
            raise ValueError(
                "windowed execution requires record_probabilities=False"
            )
        #: 0-based slot index of the recorder's column 0.
        self.col_base = 0

        self.topology = TopologyPlan(
            scenario,
            [self.runtimes[d].spec.device for d in self.device_ids],
            num_slots,
        )
        self.network_col = self.recorder.network_col

        # ---- persistent run state (the membership layer shared with the
        # vectorized backend owns the execution classes, kernel groups and
        # frozen bookkeeping, and applies topology events in place)
        self.membership = MembershipState(
            self.runtimes_by_row, self.recorder, use_kernels
        )
        self.use_kernels = use_kernels
        self.needs_feedback = any(
            p.needs_full_feedback for p in self.policies_by_row
        )
        self.choice_col = np.zeros(num_devices, dtype=np.intp)
        self.prev_col = np.full(num_devices, -1, dtype=np.intp)
        self._layout_dirty = True
        self._kernel_pos: dict[int, np.ndarray | None] = {}
        self._fallback_list: list = []
        self._act_rows = np.empty(0, dtype=np.intp)
        self._act_cols = np.empty(0, dtype=np.intp)
        self._rates_act = np.empty(0, dtype=float)
        self._switch_rows = np.empty(0, dtype=np.intp)
        #: Checkpoint cadence in slots (set by the executor when durability
        #: is on): kernel draw windows truncate here so a snapshot never has
        #: to carry a partially consumed uniform buffer.
        self.draw_barrier_every: int | None = None
        self._event_slot_list = sorted(self.topology.events)
        #: Why draw windows ended (reason -> count), for telemetry's
        #: ``fused_windows`` events.  Always-on: one dict update per window
        #: (not per slot) is noise next to the window's array work.
        self.window_truncations: dict[str, int] = {}

    # ------------------------------------------------------- checkpointing
    #
    # The naive snapshot — pickle the whole engine — serializes ~5 small
    # Python objects per device (runtime, spec, device, policy, generator),
    # which costs tens of microseconds per device and dominates checkpoint
    # time at megascale.  The columnar codec below instead stores the kernel
    # groups' array state plus one packed RNG state per row, and rebuilds
    # the scalar policy objects of kernel-resident rows from their seeds at
    # restore time.  That is exact because a kernel-resident row's scalar
    # policy is a stale husk by construction: the membership layer always
    # scatters the batched state back into it (``kernel.remove_rows`` /
    # ``flush``) before anything reads it again, so the only live per-row
    # state outside the kernel arrays is the shared RNG and the visible
    # network set — both restored explicitly.  Rows *not* resident in a
    # kernel (scalar fallback, frozen, departed-after-running) do carry live
    # scalar state and are pickled in full.

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        drop_recorder = state.pop("_snapshot_drop_recorder", False)
        for name in ("_kernel_pos", "_fallback_list"):
            state.pop(name, None)
        membership = self.membership
        if not membership.kernel_of:
            # No kernel-resident rows: every scalar policy is live state.
            return state
        for name in (
            "runtimes",
            "runtimes_by_row",
            "policies_by_row",
            "membership",
        ):
            state.pop(name, None)
        if drop_recorder:
            # The caller (checkpoint write, post window-flush) certifies the
            # recorder blocks were just reset: rebuild zeros at restore.
            recorder = self.recorder
            state["recorder"] = _RecorderStub(
                width=recorder.num_slots,
                record_probabilities=recorder.probabilities is not None,
                dtype=str(recorder.rates.dtype),
            )
            state.pop("network_col", None)
        kernels = []
        for key, kernel in membership.kernels_by_key.items():
            kernel_vars = {
                name: value
                for name, value in vars(kernel).items()
                if name not in ("recorder", "policies", "runtimes", "rngs")
            }
            kernels.append(
                (key, kernel_vars, _pack_rng_states(kernel.policies))
            )
        kernel_rows = membership.kernel_of
        state["_columnar"] = {
            "category": membership.category,
            "active": membership.active,
            "fallback_rows": membership.fallback_rows,
            "frozen_dirty": membership.frozen_dirty,
            "frozen_probs": membership.frozen_probs,
            "kernels": kernels,
            "scalar_rows": {
                row: runtime
                for row, runtime in enumerate(membership.runtimes_by_row)
                if row not in kernel_rows
            },
        }
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore from a checkpoint pickle.

        The kernel-position cache is keyed by ``id(kernel)`` — object
        identities do not survive serialization, so the layout is marked
        dirty and rebuilt lazily on the first post-restore slot.  Columnar
        snapshots additionally rebuild the scalar policy objects from their
        seeds, restore each row's RNG state and visible set, and rewire the
        kernels' row references (see ``__getstate__``).
        """
        columnar = state.pop("_columnar", None)
        self.__dict__.update(state)
        self._kernel_pos = {}
        self._fallback_list = []
        self._layout_dirty = True
        # Snapshots written by older engine versions predate the draw-window
        # machinery; default it off and rebuild the event-slot index.
        self.__dict__.setdefault("draw_barrier_every", None)
        self.__dict__.setdefault(
            "_event_slot_list", sorted(self.topology.events)
        )
        self.__dict__.setdefault("window_truncations", {})
        recorder = self.__dict__.get("recorder")
        if isinstance(recorder, _RecorderStub):
            recorder = SlotRecorder(
                self.device_ids,
                self.network_order,
                recorder.width,
                recorder.record_probabilities,
                recorder.dtype,
            )
            self.recorder = recorder
            self.network_col = recorder.network_col
        if columnar is None:
            return
        rebuilt = build_policies(
            self.scenario, self._policy_seeds, self.spec.policy_ranks
        )
        runtimes_by_row = [rebuilt[d] for d in self.device_ids]
        for row, runtime in columnar["scalar_rows"].items():
            runtimes_by_row[int(row)] = runtime
        policies_by_row = [rt.policy for rt in runtimes_by_row]
        membership = MembershipState.__new__(MembershipState)
        membership.runtimes_by_row = runtimes_by_row
        membership.policies_by_row = policies_by_row
        membership.recorder = self.recorder
        membership.category = columnar["category"]
        membership.active = columnar["active"]
        membership.fallback_rows = columnar["fallback_rows"]
        membership.frozen_dirty = columnar["frozen_dirty"]
        membership.frozen_probs = columnar["frozen_probs"]
        membership.kernels_by_key = {}
        membership.kernel_of = {}
        for key, kernel_vars, rng_states in columnar["kernels"]:
            kernel = key[0].__new__(key[0])
            kernel.__dict__.update(kernel_vars)
            kernel.recorder = self.recorder
            rows = [int(row) for row in kernel.rows]
            kernel.policies = [policies_by_row[row] for row in rows]
            kernel.runtimes = [runtimes_by_row[row] for row in rows]
            group_nets = tuple(kernel.nets)
            visible = frozenset(group_nets)
            for policy, runtime, rng_state in zip(
                kernel.policies, kernel.runtimes, _iter_rng_states(rng_states)
            ):
                if policy.available_networks != group_nets:
                    # Align sizes/visible set with the group *before* the
                    # RNG restore so any resize draws are overwritten.
                    policy.update_available_networks(visible)
                    runtime.visible = visible
                policy.rng.bit_generator.state = rng_state
            kernel.rngs = [p.rng for p in kernel.policies]
            membership.kernels_by_key[key] = kernel
            for row in rows:
                membership.kernel_of[row] = kernel
        self.membership = membership
        self.runtimes = dict(zip(self.device_ids, runtimes_by_row))
        self.runtimes_by_row = runtimes_by_row
        self.policies_by_row = policies_by_row

    def _refresh_layout(self) -> None:
        """Recompute active-row positions for kernels and fallback rows."""
        act_rows = self._act_rows
        self._kernel_pos = {}
        for kernel in self.membership.kernels_by_key.values():
            positions = np.searchsorted(act_rows, kernel.rows)
            self._kernel_pos[id(kernel)] = (
                None
                if positions.size == act_rows.size
                and np.array_equal(positions, np.arange(positions.size))
                else positions
            )
        self._fallback_list = [
            (
                row,
                self.runtimes_by_row[row],
                self.policies_by_row[row],
                int(np.searchsorted(act_rows, row)),
            )
            for row in sorted(self.membership.fallback_rows)
        ]
        self._layout_dirty = False

    # ---------------------------------------------------------- slot phases

    def _draw_span(self, slot: int, size: int) -> int:
        """Draw-window length starting at ``slot`` for a ``size``-row kernel.

        Lockstep synchronisation keeps the *slot protocol* per slot, but the
        per-row uniform draws can still be amortised: the window covers the
        membership-stable span ahead, truncated at the next topology event
        (a membership edit with live buffered draws is a stream-contract
        violation), at the next checkpoint barrier (snapshots stay free of
        half-consumed buffers) and by the draw-buffer memory budget.
        """
        span = self.num_slots - slot + 1
        reason = "horizon"
        events = self._event_slot_list
        pos = bisect_right(events, slot)
        if pos < len(events) and events[pos] - slot < span:
            span = events[pos] - slot
            reason = "topology_event"
        every = self.draw_barrier_every
        if every:
            barrier = ((slot + every - 1) // every) * every
            if barrier - slot + 1 < span:
                span = barrier - slot + 1
                reason = "checkpoint_barrier"
        budget = _DRAW_BUDGET // max(size, 1)
        if budget < span:
            span = budget
            reason = "draw_budget"
        truncations = self.window_truncations
        truncations[reason] = truncations.get(reason, 0) + 1
        return max(1, span)

    def begin(self, slot: int) -> np.ndarray:
        """Phase 1: selection.  Returns local per-network occupancy counts."""
        membership = self.membership
        events = self.topology.events.get(slot)
        if events is not None:
            membership.apply_events(events)
            self._layout_dirty = True

        choice_col = self.choice_col
        for kernel in membership.kernels_by_key.values():
            if kernel.uses_slot_draws and kernel.window_exhausted:
                kernel.prepare_window(self._draw_span(slot, kernel.size))
            choice_col[kernel.rows] = kernel.begin_slot(slot)
        network_col = self.network_col
        for row in sorted(membership.fallback_rows):
            choice_col[row] = network_col[self.policies_by_row[row].begin_slot(slot)]
        if membership.frozen_dirty:
            for row in sorted(membership.frozen_dirty):
                policy = self.policies_by_row[row]
                choice_col[row] = network_col[policy.begin_slot(slot)]
                if self.recorder.probabilities is not None:
                    cols = []
                    vals = []
                    for network_id, p in policy.probabilities.items():
                        col = network_col.get(network_id)
                        if col is not None:
                            cols.append(col)
                            vals.append(p)
                    membership.frozen_probs[row] = (
                        cols,
                        np.asarray(vals, dtype=float),
                    )
            membership.frozen_dirty.clear()

        if events is not None or self._layout_dirty:
            self._act_rows = np.nonzero(membership.active)[0]
        act_rows = self._act_rows
        self._act_cols = choice_col[act_rows]
        return np.bincount(self._act_cols, minlength=self.num_networks)

    def observe(
        self, slot: int, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Phase 2: global counts in, rates recorded, switchers out.

        ``counts`` is the all-reduced global occupancy.  Returns the shard's
        switching rows (ascending, local) and the network ids they switch
        onto; the caller resolves the delays and hands them to
        :meth:`complete`.
        """
        act_rows, act_cols = self._act_rows, self._act_cols
        col = slot - 1 - self.col_base
        recorder = self.recorder
        if act_rows.size == 0:
            self._switch_rows = np.empty(0, dtype=np.intp)
            return self._switch_rows, np.empty(0, dtype=np.int64)
        rates_act = (self.bandwidths / np.maximum(counts, 1))[act_cols]
        self._rates_act = rates_act
        recorder.rates[act_rows, col] = rates_act
        recorder.choices[act_rows, col] = self.net_ids[act_cols]
        recorder.active[act_rows, col] = True
        prev = self.prev_col[act_rows]
        switched = (prev != -1) & (prev != act_cols)
        self._switch_rows = act_rows[switched]
        switch_nets = self.net_ids[act_cols[switched]]
        self.prev_col[act_rows] = act_cols
        return self._switch_rows, switch_nets

    def complete(
        self,
        slot: int,
        delays: np.ndarray,
        member_gain: np.ndarray | None = None,
        join_gain: np.ndarray | None = None,
    ) -> None:
        """Phase 3: charge delays, feed gains back, record probabilities.

        ``delays`` aligns with the rows :meth:`observe` returned (float64 —
        policies see full precision even when the recorder stores float32).
        ``member_gain``/``join_gain`` are the global equal-share
        counterfactual arrays, computed once per slot by the caller when any
        shard policy needs full feedback.
        """
        act_rows = self._act_rows
        if act_rows.size == 0:
            return
        col = slot - 1 - self.col_base
        recorder = self.recorder
        switch_rows = self._switch_rows
        if switch_rows.size:
            recorder.delays[switch_rows, col] = delays
            recorder.switches[switch_rows, col] = True
        gains_act = np.minimum(self._rates_act / self.scale_ref, 1.0)
        if self._layout_dirty:
            self._refresh_layout()

        feedback = None
        if self.needs_feedback and member_gain is not None:
            feedback = SlotFeedback(member_gain=member_gain, join_gain=join_gain)
        for kernel in self.membership.kernels_by_key.values():
            positions = self._kernel_pos[id(kernel)]
            kernel.end_slot(
                slot,
                col,
                gains_act if positions is None else gains_act[positions],
                feedback,
            )

        if self._fallback_list:
            delay_of = dict(zip(switch_rows.tolist(), delays)) if switch_rows.size else {}
            net_ids = self.net_ids
            network_col = self.network_col
            for row, runtime, policy, pos in self._fallback_list:
                network_id = int(net_ids[self.choice_col[row]])
                switched_here = bool(recorder.switches[row, col])
                full_feedback = None
                if policy.needs_full_feedback and member_gain is not None:
                    chosen_col = self.choice_col[row]
                    visible = runtime.visible or frozenset()
                    full_feedback = {
                        k: float(member_gain[network_col[k]])
                        if network_col[k] == chosen_col
                        else float(join_gain[network_col[k]])
                        for k in visible
                    }
                policy.end_slot(
                    slot,
                    Observation(
                        slot=slot,
                        network_id=network_id,
                        bit_rate_mbps=float(self._rates_act[pos]),
                        gain=float(gains_act[pos]),
                        switched=switched_here,
                        delay_s=float(delay_of.get(row, 0.0)),
                        full_feedback=full_feedback,
                    ),
                )
                runtime.previous_choice = network_id
                recorder.record_probabilities(row, col, policy)

        block = recorder.probabilities
        if block is not None:
            frozen_probs = self.membership.frozen_probs
            category = self.membership.category
            for row in act_rows[category[act_rows] == _FROZEN]:
                cols, vals = frozen_probs[int(row)]
                block[row, col, cols] = vals

    # --------------------------------------------------------- run assembly

    def flush_policies(self) -> None:
        """Scatter surviving kernel groups back into the scalar policies."""
        for kernel in self.membership.kernels_by_key.values():
            kernel.flush()
            for runtime, local_row in zip(kernel.runtimes, kernel.rows):
                runtime.previous_choice = int(
                    self.net_ids[self.prev_col[local_row]]
                )

    def result(self) -> SimulationResult:
        """The shard's full result (full-horizon recorder mode only)."""
        return self.recorder.result(self.scenario, self.seed_label, self.runtimes)

    # ------------------------------------------------------- window support

    def window_result(self, width: int) -> SimulationResult:
        """A :class:`SimulationResult` over the current window's first
        ``width`` columns (zero-copy views into the recorder blocks)."""
        recorder = self.recorder
        full = width == recorder.num_slots
        return SimulationResult(
            scenario_name=self.scenario.name,
            seed=self.seed_label,
            num_slots=width,
            slot_duration_s=self.scenario.slot_duration_s,
            networks=dict(self.scenario.network_map),
            device_ids=self.device_ids,
            policy_names={
                d: self.runtimes[d].spec.policy for d in self.device_ids
            },
            choices_2d=recorder.choices if full else recorder.choices[:, :width],
            rates_2d=recorder.rates if full else recorder.rates[:, :width],
            delays_2d=recorder.delays if full else recorder.delays[:, :width],
            switches_2d=recorder.switches if full else recorder.switches[:, :width],
            active_2d=recorder.active if full else recorder.active[:, :width],
            probabilities_3d=None,
        )

    def reset_window(self, next_col_base: int) -> None:
        """Clear the recorder blocks for the next slot window."""
        recorder = self.recorder
        recorder.choices.fill(NO_NETWORK)
        recorder.rates.fill(0.0)
        recorder.delays.fill(0.0)
        recorder.switches.fill(False)
        recorder.active.fill(False)
        self.col_base = next_col_base
