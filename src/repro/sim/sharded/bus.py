"""Per-slot synchronisation buses for the sharded engine.

The sharded run advances all shards in lockstep: once per slot every shard
publishes its ``(networks,)`` occupancy vector and reads back the global sum
(the all-reduce the congestion game's structure permits), and — only for
stochastic delay models — a second exchange publishes the slot's switching
devices so every worker can replay the global ascending-device-order delay
draw on its own environment-RNG replica.  Checkpointing adds a third,
occasional barrier: a commit fence confirming every worker finished writing
its shard snapshots before worker 0 seals the manifest.

Two implementations:

* :class:`SerialBus` — the in-process ``workers=1`` mode: one driver owns
  every shard, so both exchanges are identities and the commit fence is a
  no-op.  This is the debugging and bit-exactness-testing mode.
* :class:`SharedMemoryBus` — the hot path: worker processes communicate
  through two pre-allocated shared-memory rings (``multiprocessing.Array``
  without locks) synchronised by one :class:`multiprocessing.Barrier` wait
  per exchange.  Each ring is double-banked by slot parity: a slot writes
  bank ``slot % 2`` and the earliest possible reuse of a bank sits two
  barriers later, by which point every worker has read it.

Every :class:`SharedMemoryBus` barrier wait is bounded by a configurable
timeout (``SupervisionConfig.barrier_timeout_s``).  Before waiting, a
worker publishes ``(slot, phase)`` to a shared progress table; when a wait
times out — or a failing peer breaks the barrier — the worker raises
:class:`~repro.sim.sharded.faults.BusTimeoutError` naming which workers
arrived at the fence and where every missing worker was last seen, instead
of blocking forever on a dead peer.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.sim.sharded.faults import (
    DEFAULT_BARRIER_TIMEOUT_S,
    BusTimeoutError,
)
from repro.telemetry import Histogram, get_telemetry, telemetry_enabled

#: Backwards-compatible alias (pre-supervision name for the default bound).
BARRIER_TIMEOUT_S = DEFAULT_BARRIER_TIMEOUT_S

#: Progress-table phase codes, indexable by the phase column.
PHASE_NAMES = ("counts all-reduce", "switcher exchange", "checkpoint commit")
PHASE_COUNTS, PHASE_SWITCHERS, PHASE_CHECKPOINT = range(3)


class SerialBus:
    """Identity bus for the in-process lockstep driver (all shards local)."""

    def reduce_counts(self, slot: int, local_counts: np.ndarray) -> np.ndarray:
        return local_counts

    def exchange_switchers(
        self, slot: int, rows: np.ndarray, nets: np.ndarray
    ) -> tuple[np.ndarray, int]:
        return nets, 0

    def checkpoint_sync(self, slot: int) -> None:
        """Commit fence: trivially satisfied with a single driver."""

    def wait_stats(self) -> dict | None:
        """No barriers, no waits: a single driver never blocks."""
        return None


class SharedMemoryBus:
    """Shared-memory ring + barrier all-reduce between worker processes."""

    def __init__(
        self,
        worker_index: int,
        num_workers: int,
        worker_device_offsets: list[int],
        counts_view: np.ndarray,
        switcher_view: np.ndarray | None,
        switcher_counts_view: np.ndarray | None,
        barrier,
        timeout_s: float = DEFAULT_BARRIER_TIMEOUT_S,
        progress_view: np.ndarray | None = None,
    ) -> None:
        self.worker_index = worker_index
        self.num_workers = num_workers
        #: Global device-row offset of each worker's first shard.
        self.worker_device_offsets = worker_device_offsets
        self.counts = counts_view  # (2, workers, networks) int64
        self.switchers = switcher_view  # (2, total_devices, 2) int64 | None
        self.switcher_counts = switcher_counts_view  # (2, workers) int64 | None
        self.barrier = barrier
        self.timeout_s = timeout_s
        self.progress = progress_view  # (workers, 2) int64: last (slot, phase)
        #: Barrier-wait histogram, live only under telemetry: the extra cost
        #: per wait is two ``perf_counter`` calls and one bisect, but the
        #: disabled path must stay a single ``is None`` check.
        self.wait_hist: Histogram | None = (
            Histogram() if telemetry_enabled() else None
        )

    # ------------------------------------------------------------- barriers

    def _wait(self, slot: int, phase: int) -> None:
        """One bounded barrier wait, with arrival diagnostics on failure."""
        if self.progress is not None:
            self.progress[self.worker_index, 0] = slot
            self.progress[self.worker_index, 1] = phase
        hist = self.wait_hist
        try:
            if hist is None:
                self.barrier.wait(self.timeout_s)
            else:
                waited = time.perf_counter()
                self.barrier.wait(self.timeout_s)
                hist.observe(time.perf_counter() - waited)
        except threading.BrokenBarrierError:
            error = BusTimeoutError(*self._diagnose(slot, phase))
            telemetry = get_telemetry()
            if telemetry is not None:
                telemetry.event(
                    "barrier_timeout",
                    slot=slot,
                    phase=PHASE_NAMES[phase],
                    arrived=error.arrived,
                    missing=error.missing,
                    worker=self.worker_index,
                )
            raise error from None

    def wait_stats(self) -> dict | None:
        """Snapshot for a ``barrier_waits`` event, or ``None`` when disabled."""
        hist = self.wait_hist
        if hist is None or hist.count == 0:
            return None
        payload = hist.payload()
        return {
            "waits": payload["count"],
            "seconds": payload["total"],
            "histogram": payload,
        }

    def _diagnose(self, slot: int, phase: int) -> tuple[str, int, list, list]:
        """Which workers reached this fence, and where the rest were seen."""
        arrived: list[int] = []
        missing: list[str] = []
        if self.progress is not None:
            snapshot = np.array(self.progress)
            for worker in range(self.num_workers):
                last_slot, last_phase = int(snapshot[worker, 0]), int(
                    snapshot[worker, 1]
                )
                if (last_slot, last_phase) >= (slot, phase):
                    arrived.append(worker)
                elif last_slot <= 0:
                    missing.append(f"worker {worker} never reached a barrier")
                else:
                    missing.append(
                        f"worker {worker} last seen at slot {last_slot} "
                        f"({PHASE_NAMES[last_phase]})"
                    )
        message = (
            f"barrier wait broken or timed out (> {self.timeout_s:.1f}s) at "
            f"slot {slot} ({PHASE_NAMES[phase]}): "
            f"arrived {arrived or 'unknown'}"
            + (f"; {'; '.join(missing)}" if missing else "")
        )
        return message, slot, arrived, missing

    # ------------------------------------------------------------ exchanges

    def reduce_counts(self, slot: int, local_counts: np.ndarray) -> np.ndarray:
        bank = slot % 2
        self.counts[bank, self.worker_index, :] = local_counts
        self._wait(slot, PHASE_COUNTS)
        return self.counts[bank].sum(axis=0)

    def exchange_switchers(
        self, slot: int, rows: np.ndarray, nets: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Publish this worker's switchers; read back the global list.

        ``rows`` are global device rows in ascending order; worker slices
        are disjoint ascending ranges, so concatenating per-worker segments
        in worker order reproduces the global ascending-device order the
        delay draw must follow.  Returns the global network-id sequence and
        this worker's offset into it.
        """
        bank = slot % 2
        count = int(rows.size)
        self.switcher_counts[bank, self.worker_index] = count
        lo = self.worker_device_offsets[self.worker_index]
        if count:
            self.switchers[bank, lo : lo + count, 0] = rows
            self.switchers[bank, lo : lo + count, 1] = nets
        self._wait(slot, PHASE_SWITCHERS)
        counts = self.switcher_counts[bank]
        segments = []
        offset = 0
        for worker in range(self.num_workers):
            worker_count = int(counts[worker])
            if worker < self.worker_index:
                offset += worker_count
            if worker_count:
                worker_lo = self.worker_device_offsets[worker]
                segments.append(
                    self.switchers[bank, worker_lo : worker_lo + worker_count, 1]
                )
        if not segments:
            return np.empty(0, dtype=np.int64), 0
        return np.concatenate(segments), offset

    def checkpoint_sync(self, slot: int) -> None:
        """Commit fence: every worker's shard files are on disk past this."""
        self._wait(slot, PHASE_CHECKPOINT)
