"""Per-slot synchronisation buses for the sharded engine.

The sharded run advances all shards in lockstep: once per slot every shard
publishes its ``(networks,)`` occupancy vector and reads back the global sum
(the all-reduce the congestion game's structure permits), and — only for
stochastic delay models — a second exchange publishes the slot's switching
devices so every worker can replay the global ascending-device-order delay
draw on its own environment-RNG replica.

Two implementations:

* :class:`SerialBus` — the in-process ``workers=1`` mode: one driver owns
  every shard, so both exchanges are identities.  This is the debugging and
  bit-exactness-testing mode.
* :class:`SharedMemoryBus` — the hot path: worker processes communicate
  through two pre-allocated shared-memory rings (``multiprocessing.Array``
  without locks) synchronised by one :class:`multiprocessing.Barrier` wait
  per exchange.  Each ring is double-banked by slot parity: a slot writes
  bank ``slot % 2`` and the earliest possible reuse of a bank sits two
  barriers later, by which point every worker has read it.
"""

from __future__ import annotations

import numpy as np

#: Barrier timeout: generous enough for a million-device slot on a loaded
#: machine, finite so a crashed worker fails the run instead of hanging it.
BARRIER_TIMEOUT_S = 600.0


class SerialBus:
    """Identity bus for the in-process lockstep driver (all shards local)."""

    def reduce_counts(self, slot: int, local_counts: np.ndarray) -> np.ndarray:
        return local_counts

    def exchange_switchers(
        self, slot: int, rows: np.ndarray, nets: np.ndarray
    ) -> tuple[np.ndarray, int]:
        return nets, 0


class SharedMemoryBus:
    """Shared-memory ring + barrier all-reduce between worker processes."""

    def __init__(
        self,
        worker_index: int,
        num_workers: int,
        worker_device_offsets: list[int],
        counts_view: np.ndarray,
        switcher_view: np.ndarray | None,
        switcher_counts_view: np.ndarray | None,
        barrier,
        timeout_s: float = BARRIER_TIMEOUT_S,
    ) -> None:
        self.worker_index = worker_index
        self.num_workers = num_workers
        #: Global device-row offset of each worker's first shard.
        self.worker_device_offsets = worker_device_offsets
        self.counts = counts_view  # (2, workers, networks) int64
        self.switchers = switcher_view  # (2, total_devices, 2) int64 | None
        self.switcher_counts = switcher_counts_view  # (2, workers) int64 | None
        self.barrier = barrier
        self.timeout_s = timeout_s

    def reduce_counts(self, slot: int, local_counts: np.ndarray) -> np.ndarray:
        bank = slot % 2
        self.counts[bank, self.worker_index, :] = local_counts
        self.barrier.wait(self.timeout_s)
        return self.counts[bank].sum(axis=0)

    def exchange_switchers(
        self, slot: int, rows: np.ndarray, nets: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Publish this worker's switchers; read back the global list.

        ``rows`` are global device rows in ascending order; worker slices
        are disjoint ascending ranges, so concatenating per-worker segments
        in worker order reproduces the global ascending-device order the
        delay draw must follow.  Returns the global network-id sequence and
        this worker's offset into it.
        """
        bank = slot % 2
        count = int(rows.size)
        self.switcher_counts[bank, self.worker_index] = count
        lo = self.worker_device_offsets[self.worker_index]
        if count:
            self.switchers[bank, lo : lo + count, 0] = rows
            self.switchers[bank, lo : lo + count, 1] = nets
        self.barrier.wait(self.timeout_s)
        counts = self.switcher_counts[bank]
        segments = []
        offset = 0
        for worker in range(self.num_workers):
            worker_count = int(counts[worker])
            if worker < self.worker_index:
                offset += worker_count
            if worker_count:
                worker_lo = self.worker_device_offsets[worker]
                segments.append(
                    self.switchers[bank, worker_lo : worker_lo + worker_count, 1]
                )
        if not segments:
            return np.empty(0, dtype=np.int64), 0
        return np.concatenate(segments), offset
