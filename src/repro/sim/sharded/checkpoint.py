"""Periodic shard-state checkpointing and bit-exact resume.

Every piece of a sharded run's mutable state is picklable by construction —
kernel arrays, per-device policy RNG generators, the environment-RNG
replica, reducer partials, recorder windows, ``TopologyPlan`` cursors — so
durability is a serialization protocol, not a redesign.  Once per
``every_slots`` slots each worker snapshots its shards.  Snapshots use a
columnar codec (:func:`snapshot_dumps` together with
``ShardEngine.__getstate__``): kernel-resident rows are serialized as their
batched group arrays plus one packed RNG state per row, and their scalar
policy objects are rebuilt from seeds at restore — pickling per-device
Python objects would cost more than the compute between checkpoints.  A
resumed run
restores every shard at the checkpointed slot and continues **bit-exact**:
a run that crashes and resumes produces byte-identical results to one that
never crashed (the acceptance test of the fault-tolerance suite).

Commit protocol
---------------

A checkpoint at slot ``s`` lives in ``<dir>/ckpt_<s:08d>/``:

* each worker atomically writes one ``shard_<index:04d>.pkl`` per shard it
  drives — ``(engine, reducer_state)`` — via write-to-temp + ``fsync`` +
  ``os.replace``;
* worker 0 writes ``env.pkl`` (the shared environment-RNG replica — all
  workers' replicas are identical at a slot boundary by the lockstep
  contract);
* a bus barrier confirms every worker finished writing, then worker 0
  commits ``MANIFEST.json`` — format version, a fingerprint of the run
  configuration, the slot/window cursors, and a SHA-256 per file — and
  prunes checkpoints beyond ``keep``.

A directory without a manifest is an uncommitted (crashed-mid-write)
checkpoint and is invisible to resume.  Resume validates the manifest's
format version and fingerprint (mismatched scenario/seed/shard-count fails
loudly, naming the differing fields) and every file's checksum (a corrupted
file raises :class:`CheckpointError` — a clean refusal, never silent wrong
results).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.sim.backends.base import DeviceRuntime

#: Bump when the checkpoint layout or pickle payload shape changes; resume
#: refuses manifests with a different version.
CHECKPOINT_FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
_CKPT_PREFIX = "ckpt_"


class CheckpointError(RuntimeError):
    """A checkpoint could not be used: missing, mismatched, or corrupt."""


@dataclass(frozen=True)
class CheckpointConfig:
    """Periodic checkpointing policy for a sharded run.

    Attributes
    ----------
    every_slots:
        Checkpoint cadence: a snapshot is committed after every slot whose
        index is a multiple of this.  The cadence is a durability/throughput
        trade-off — each checkpoint costs one columnar snapshot of every
        shard's state plus fsync'd writes, so small populations can afford
        tight cadences
        while megascale runs typically checkpoint every few hundred slots
        (the ``--suite shard`` benchmark records the overhead; CI keeps it
        under 15% at a 100-slot cadence).
    dir:
        Directory receiving ``ckpt_<slot>`` subdirectories (created on
        demand).
    keep:
        How many committed checkpoints to retain; older ones are pruned at
        each commit.
    """

    every_slots: int
    dir: str | Path
    keep: int = 2

    def __post_init__(self) -> None:
        if self.every_slots < 1:
            raise ValueError(
                f"every_slots must be >= 1, got {self.every_slots}"
            )
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")

    @property
    def path(self) -> Path:
        return Path(self.dir)

    def for_run(self, name: str) -> "CheckpointConfig":
        """A copy checkpointing into the ``name`` subdirectory (multi-run)."""
        return replace(self, dir=self.path / name)


@dataclass(frozen=True)
class ResumeState:
    """A validated checkpoint to restore from (picklable, sent to workers)."""

    directory: str
    slot: int
    window_start: int
    manifest: dict

    @property
    def path(self) -> Path:
        return Path(self.directory)


# ---------------------------------------------------------------- identity


def run_fingerprint(plan, **fields) -> tuple[str, dict]:
    """Fingerprint of everything a checkpoint must match to be resumable.

    Covers the device population (digested — per-device identity for
    explicit scenarios, the generative parameters for populations), the
    shard layout, the horizon, the run's derived RNG seeds, and every
    execution knob that shapes the state being pickled.  Deliberately
    excludes the *worker* count: shard files are per shard, so a run
    checkpointed under ``workers=4`` resumes bit-exact under ``workers=1``
    or ``workers=8``.
    """
    spec = plan.specs[0]
    digest = hashlib.sha256()
    if spec.population is not None:
        population = spec.population
        digest.update(
            repr(
                (
                    population.num_devices,
                    population.policy,
                    population.bandwidths,
                    population.horizon_slots,
                    population.slot_duration_s,
                    type(population.delay_model).__name__,
                    sorted(population.policy_kwargs.items()),
                    population.name,
                )
            ).encode()
        )
    else:
        scenario = spec.scenario
        digest.update(
            repr(
                (
                    scenario.name,
                    tuple(
                        (network_id, network.bandwidth_mbps)
                        for network_id, network in sorted(
                            scenario.network_map.items()
                        )
                    ),
                    type(scenario.delay_model).__name__,
                    type(scenario.gain_model).__name__,
                )
            ).encode()
        )
        for shard in plan.specs:
            for device_spec in shard.scenario.device_specs:
                device = device_spec.device
                digest.update(
                    repr(
                        (
                            device.device_id,
                            device_spec.policy,
                            device.join_slot,
                            device.leave_slot,
                            sorted(device.area_schedule.items())
                            if device.area_schedule
                            else (),
                        )
                    ).encode()
                )
    config = {
        "population_digest": digest.hexdigest(),
        "shards": plan.shards,
        "num_devices": plan.num_devices,
        **fields,
    }
    fingerprint = hashlib.sha256(
        json.dumps(config, sort_keys=True).encode()
    ).hexdigest()
    return fingerprint, config


# ------------------------------------------------------- snapshot pickling


def _restore_generator(name: str, state: dict):
    """Rebuild an ``np.random.Generator`` from its bit-generator state."""
    bit_generator = getattr(np.random, name)()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def _restore_runtime(spec, policy, previous_choice, visible):
    runtime = DeviceRuntime.__new__(DeviceRuntime)
    runtime.spec = spec
    runtime.policy = policy
    runtime.previous_choice = previous_choice
    runtime.visible = visible
    return runtime


class _SnapshotPickler(pickle.Pickler):
    """Pickler tuned for the per-device hot path of shard snapshots.

    ``np.random.Generator.__reduce__`` costs ~25µs per instance (it routes
    through the generic constructor protocol); packing the bit-generator
    state dict directly is ~6x faster, which matters when a snapshot holds
    one generator per device.  ``DeviceRuntime`` gets the same treatment.
    Object identity is preserved by the pickle memo, so generators shared
    between a scalar policy and its batch kernel stay shared on load.
    """

    def reducer_override(self, obj):
        kind = type(obj)
        if kind is np.random.Generator:
            bit_generator = obj.bit_generator
            return (
                _restore_generator,
                (type(bit_generator).__name__, bit_generator.state),
            )
        if kind is DeviceRuntime:
            return (
                _restore_runtime,
                (obj.spec, obj.policy, obj.previous_choice, obj.visible),
            )
        return NotImplemented


def snapshot_dumps(payload) -> bytes:
    """Serialize a checkpoint payload with the tuned snapshot pickler."""
    buffer = io.BytesIO()
    _SnapshotPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(payload)
    return buffer.getvalue()


# ------------------------------------------------------------ atomic writes


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-to-temp + fsync + rename: the file is complete or absent."""
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def checkpoint_dir(config: CheckpointConfig, slot: int) -> Path:
    return config.path / f"{_CKPT_PREFIX}{slot:08d}"


def shard_file_name(shard_index: int) -> str:
    return f"shard_{shard_index:04d}.pkl"


def write_shard_states(
    config: CheckpointConfig,
    slot: int,
    engines,
    states,
    drop_recorder: bool = False,
) -> Path:
    """Atomically write one ``(engine, reducer_state)`` file per shard.

    ``drop_recorder=True`` certifies the checkpoint landed right after a
    window flush, so the recorder blocks are freshly zeroed and the engine
    snapshot may replace them with a stub (see ``ShardEngine.__getstate__``).
    """
    directory = checkpoint_dir(config, slot)
    os.makedirs(directory, exist_ok=True)
    for engine, state in zip(engines, states):
        if drop_recorder:
            engine._snapshot_drop_recorder = True
        try:
            payload = snapshot_dumps((engine, state))
        finally:
            engine.__dict__.pop("_snapshot_drop_recorder", None)
        _atomic_write(directory / shard_file_name(engine.spec.index), payload)
    return directory


def write_environment(config: CheckpointConfig, slot: int, delay_env) -> None:
    directory = checkpoint_dir(config, slot)
    os.makedirs(directory, exist_ok=True)
    _atomic_write(directory / "env.pkl", snapshot_dumps(delay_env))


def commit_manifest(
    config: CheckpointConfig,
    slot: int,
    fingerprint: str,
    fingerprint_config: dict,
    window_start: int,
    shards: int,
) -> Path:
    """Checksum every state file and atomically commit the manifest.

    Called by worker 0 *after* the checkpoint barrier, so every shard file
    is known complete.  Missing files mean a protocol bug, not a partial
    write — fail loudly.
    """
    directory = checkpoint_dir(config, slot)
    expected = [shard_file_name(index) for index in range(shards)] + ["env.pkl"]
    files = {}
    for name in expected:
        path = directory / name
        if not path.exists():
            raise CheckpointError(
                f"checkpoint at slot {slot} is missing {name!r} after the "
                "write barrier; refusing to commit a partial manifest"
            )
        files[name] = _sha256_file(path)
    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "fingerprint": fingerprint,
        "config": fingerprint_config,
        "slot": slot,
        "window_start": window_start,
        "shards": shards,
        "files": files,
        "created_at": time.time(),
    }
    _atomic_write(
        directory / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )
    _fsync_dir(directory)
    from repro.telemetry import get_telemetry  # local: keep pickling light

    telemetry = get_telemetry()
    if telemetry is not None:
        telemetry.event(
            "checkpoint_commit",
            slot=slot,
            shards=shards,
            bytes=sum((directory / name).stat().st_size for name in files),
        )
    prune_checkpoints(config)
    return directory


def prune_checkpoints(config: CheckpointConfig) -> None:
    """Drop committed checkpoints beyond ``keep`` (oldest first)."""
    committed = sorted(
        entry
        for entry in config.path.glob(f"{_CKPT_PREFIX}*")
        if (entry / MANIFEST_NAME).exists()
    )
    for stale in committed[: max(0, len(committed) - config.keep)]:
        for item in stale.iterdir():
            item.unlink()
        stale.rmdir()


# ----------------------------------------------------------------- resume


def latest_checkpoint(directory: str | Path) -> Path | None:
    """Newest *committed* checkpoint under ``directory`` (or ``None``).

    ``directory`` may be the checkpoint root (``ckpt_*`` children are
    scanned) or one specific ``ckpt_<slot>`` directory.
    """
    path = Path(directory)
    if (path / MANIFEST_NAME).exists():
        return path
    committed = sorted(
        entry
        for entry in path.glob(f"{_CKPT_PREFIX}*")
        if (entry / MANIFEST_NAME).exists()
    )
    return committed[-1] if committed else None


def resolve_resume(
    directory: str | Path | None,
    fingerprint: str,
    fingerprint_config: dict,
    required: bool = False,
) -> ResumeState | None:
    """Find and validate the checkpoint to resume from.

    Returns ``None`` when ``directory`` is ``None`` or holds no committed
    checkpoint and ``required`` is false (the caller starts fresh — the
    degenerate case of a crash before the first checkpoint).  Raises
    :class:`CheckpointError` on a missing-but-required checkpoint, a
    format-version mismatch, or a fingerprint mismatch (naming the
    configuration fields that differ, so "resumed against the wrong
    scenario/seed/shard-count" is a one-line diagnosis).
    """
    if directory is None:
        return None
    found = latest_checkpoint(directory)
    if found is None:
        if required:
            raise CheckpointError(
                f"no committed checkpoint under {directory!s} "
                f"(a checkpoint directory must contain {MANIFEST_NAME})"
            )
        return None
    try:
        manifest = json.loads((found / MANIFEST_NAME).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint manifest {found / MANIFEST_NAME}: {exc}"
        ) from exc
    version = manifest.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {found} has format version {version}, "
            f"this build reads version {CHECKPOINT_FORMAT_VERSION}"
        )
    if manifest.get("fingerprint") != fingerprint:
        stored = manifest.get("config", {})
        differing = sorted(
            key
            for key in set(stored) | set(fingerprint_config)
            if stored.get(key) != fingerprint_config.get(key)
        )
        raise CheckpointError(
            f"checkpoint {found} does not match this run's configuration "
            f"(differing fields: {', '.join(differing) or 'unknown'}); "
            "resuming would not be bit-exact — refusing"
        )
    return ResumeState(
        directory=str(found),
        slot=int(manifest["slot"]),
        window_start=int(manifest["window_start"]),
        manifest=manifest,
    )


def _verified_payload(resume: ResumeState, name: str) -> bytes:
    path = resume.path / name
    recorded = resume.manifest["files"].get(name)
    if recorded is None:
        raise CheckpointError(
            f"checkpoint {resume.directory} has no manifest entry for {name!r}"
        )
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint file {path} is unreadable: {exc}"
        ) from exc
    actual = hashlib.sha256(data).hexdigest()
    if actual != recorded:
        raise CheckpointError(
            f"checkpoint file {path} is corrupt "
            f"(sha256 {actual[:12]}… != manifest {recorded[:12]}…); "
            "refusing to resume from damaged state"
        )
    return data


def load_shard_state(resume: ResumeState, shard_index: int):
    """The checksum-verified ``(engine, reducer_state)`` of one shard."""
    return pickle.loads(_verified_payload(resume, shard_file_name(shard_index)))


def load_environment(resume: ResumeState):
    """The checksum-verified environment-RNG replica."""
    return pickle.loads(_verified_payload(resume, "env.pkl"))
