"""Device-axis shard planning.

A :class:`ShardPlan` partitions one run's device population into ``K``
contiguous blocks of the global row order (devices sorted by id — the same
order every backend uses for its columnar blocks), so that stitching shard
results back together is a plain concatenation.  Each shard is described by
a picklable :class:`ShardSpec` carrying everything a worker process needs to
build its slice of the run *without* the full population:

* a sub-:class:`~repro.sim.scenario.Scenario` holding only the shard's
  device specs (networks, coverage, gain/delay models are shared in full —
  the per-slot physics needs the complete network axis), or a
  :class:`HomogeneousPopulation` factory that builds it on demand so a
  million-device population never materialises in the parent process;
* the shard devices' positions in the global scenario-spec order, used to
  slice the run's per-device policy-seed array
  (:func:`repro.sim.backends.base.derive_run_streams`) — per-device RNG
  streams therefore depend only on the run seed and the device order, never
  on the shard layout, which is what makes results shard-count invariant;
* the shard devices' global policy ranks (Centralized assigns devices to
  networks by population-wide rank, so a shard-local rank would diverge).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.game.device import Device
from repro.game.network import make_networks
from repro.sim.backends.base import policy_rank_table
from repro.sim.delay import ConstantDelayModel, DelayModel
from repro.sim.mobility import CoverageMap
from repro.sim.scenario import (
    DEFAULT_SLOT_DURATION_S,
    DeviceSpec,
    Scenario,
)


@dataclass(frozen=True)
class HomogeneousPopulation:
    """A generative description of a uniform million-device population.

    Builds per-shard :class:`~repro.sim.scenario.Scenario` slices on demand
    (:meth:`build_shard`), so neither the parent nor any worker ever holds
    the full device list — the megascale driver's memory story starts here.
    All devices run ``policy`` over the same single-area network set and are
    present for the whole horizon; the default delay model is stream-free
    (:class:`~repro.sim.delay.ConstantDelayModel`), which lets shards sample
    switching delays locally without the per-slot switcher exchange.
    """

    num_devices: int
    policy: str = "exp3"
    bandwidths: tuple[float, ...] = (4.0, 7.0, 22.0)
    horizon_slots: int = 1000
    slot_duration_s: float = DEFAULT_SLOT_DURATION_S
    delay_model: DelayModel = field(default_factory=ConstantDelayModel)
    policy_kwargs: Mapping = field(default_factory=dict)
    name: str = "megascale"

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.horizon_slots < 1:
            raise ValueError("horizon_slots must be >= 1")

    def build_shard(self, lo: int, hi: int) -> Scenario:
        """The sub-scenario for global device rows ``[lo, hi)``."""
        networks = make_networks(list(self.bandwidths))
        coverage = CoverageMap.single_area([n.network_id for n in networks])
        specs = [
            DeviceSpec(
                device=Device(device_id=device_id),
                policy=self.policy,
                policy_kwargs=dict(self.policy_kwargs),
            )
            for device_id in range(lo, hi)
        ]
        return Scenario(
            name=self.name,
            networks=networks,
            device_specs=specs,
            coverage=coverage,
            delay_model=self.delay_model,
            horizon_slots=self.horizon_slots,
            slot_duration_s=self.slot_duration_s,
        )


@dataclass(frozen=True)
class ShardSpec:
    """One shard's work description (picklable, O(shard devices))."""

    index: int
    #: Global row range ``[lo, hi)`` in the sorted-device-id order.
    lo: int
    hi: int
    #: The shard's sub-scenario, specs in global row order — or ``None``
    #: when the shard builds it from ``population`` on demand.
    scenario: Scenario | None
    population: HomogeneousPopulation | None
    #: Per local row: the device's position in the global scenario-spec
    #: order (indexes the run's policy-seed array).
    seed_positions: np.ndarray
    #: Per local row: the device's global ``(device_index, num_devices)``
    #: rank within its policy name.
    policy_ranks: tuple[tuple[int, int], ...]

    @property
    def num_devices(self) -> int:
        return self.hi - self.lo

    def materialize(self) -> Scenario:
        """The shard's sub-scenario (built from the factory if needed)."""
        if self.scenario is not None:
            return self.scenario
        return self.population.build_shard(self.lo, self.hi)


def shard_boundaries(num_devices: int, shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` splits of ``range(num_devices)``."""
    shards = max(1, min(shards, num_devices))
    base, extra = divmod(num_devices, shards)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ShardPlan:
    """Device→shard assignment for one scenario (or generative population).

    ``shards`` is clamped to the population size; ``shards=1`` degenerates
    to a single block covering every device, which the equivalence suite
    uses to pin the sharded engine against the vectorized backend.
    """

    def __init__(self, specs: Sequence[ShardSpec], num_devices: int) -> None:
        self.specs = tuple(specs)
        self.num_devices = num_devices

    @property
    def shards(self) -> int:
        return len(self.specs)

    @classmethod
    def from_scenario(cls, scenario: Scenario, shards: int) -> "ShardPlan":
        """Partition an explicit scenario's devices into ``shards`` blocks."""
        ranks = policy_rank_table(scenario.device_specs)
        # Global row order: devices sorted by id, each remembering its
        # position in the original spec order (seed order) and its rank.
        ordered = sorted(
            zip(scenario.device_specs, range(len(ranks)), ranks),
            key=lambda entry: entry[0].device.device_id,
        )
        bounds = shard_boundaries(len(ordered), shards)
        specs = []
        for index, (lo, hi) in enumerate(bounds):
            block = ordered[lo:hi]
            specs.append(
                ShardSpec(
                    index=index,
                    lo=lo,
                    hi=hi,
                    scenario=replace(
                        scenario,
                        device_specs=[entry[0] for entry in block],
                    ),
                    population=None,
                    seed_positions=np.asarray(
                        [entry[1] for entry in block], dtype=np.intp
                    ),
                    policy_ranks=tuple(entry[2] for entry in block),
                )
            )
        return cls(specs, len(ordered))

    @classmethod
    def from_population(
        cls, population: HomogeneousPopulation, shards: int
    ) -> "ShardPlan":
        """Partition a generative population without materialising it."""
        total = population.num_devices
        bounds = shard_boundaries(total, shards)
        specs = []
        for index, (lo, hi) in enumerate(bounds):
            specs.append(
                ShardSpec(
                    index=index,
                    lo=lo,
                    hi=hi,
                    scenario=None,
                    population=population,
                    # Spec order == id order == row order for a uniform
                    # population, so positions and ranks are arithmetic.
                    seed_positions=np.arange(lo, hi, dtype=np.intp),
                    policy_ranks=tuple(
                        (row, total) for row in range(lo, hi)
                    ),
                )
            )
        return cls(specs, total)
