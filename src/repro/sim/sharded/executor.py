"""The sharded population executor.

:class:`ShardedSlotExecutor` partitions a run's device population into
``shards`` contiguous blocks (:mod:`repro.sim.sharded.plan`), executes each
block with the existing batched kernels and churn machinery
(:mod:`repro.sim.sharded.engine`), and synchronises the blocks once per slot
with an all-reduce of the per-network occupancy vector
(:mod:`repro.sim.sharded.bus`).  ``workers=1`` drives every shard in-process
(serial lockstep — the debugging and bit-exactness mode); ``workers>1``
spreads the shards over worker processes communicating through a
shared-memory ring.

Result assembly has two shapes:

* :meth:`execute` — the standard backend contract: every shard's columnar
  blocks are gathered and stitched into one full
  :class:`~repro.sim.metrics.SimulationResult`, bit-exact against the
  vectorized backend for any shard/worker count.  Appropriate for
  populations whose blocks fit one process.
* :meth:`map_reduced` — the megascale path: each shard applies a
  shard-capable :class:`~repro.analysis.reducers.Reducer` to bounded slot
  *windows* of its own blocks as the run advances, so no process ever holds
  ``O(devices × slots)`` state; only kilobyte-to-megabyte shard summaries
  are merged at the end.  Reducers that cannot reduce over a device
  partition (e.g. stability, which needs the global mixed-strategy tensor)
  transparently fall back to gather-then-map.

Physics support: the closed-form equal-share gain model — exactly the class
the vectorized backend's fast path covers.  Other gain models consume the
environment RNG per network over the *global* association grouping, which a
device-partitioned execution cannot replay without shipping every choice;
such scenarios fall back to the vectorized backend (or raise with
``strict=True``).  Delay models need no such restriction: stream-free models
(:class:`~repro.sim.delay.NoDelayModel` / ``ConstantDelayModel``) sample
shard-locally, and stochastic ones replay the global ascending-device-order
draw on every worker's environment-RNG replica via the per-slot switcher
exchange.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from repro.game.gain import EqualShareModel
from repro.sim.backends.base import SlotExecutor, derive_run_streams
from repro.sim.backends.membership import equal_share_feedback
from repro.sim.environment import WirelessEnvironment
from repro.sim.metrics import SimulationResult
from repro.sim.scenario import Scenario
from repro.sim.sharded.bus import BARRIER_TIMEOUT_S, SerialBus, SharedMemoryBus
from repro.sim.sharded.engine import ShardEngine
from repro.sim.sharded.plan import (
    HomogeneousPopulation,
    ShardPlan,
    shard_boundaries,
)

logger = logging.getLogger("repro.sim.sharded")

#: Default slot-window width for the streaming (reduced) path.
DEFAULT_WINDOW_SLOTS = 256


@dataclass(frozen=True)
class RunParams:
    """Picklable per-run execution parameters shared by serial and workers."""

    num_slots: int
    environment_seed: int
    seed_label: int
    record_probabilities: bool
    dtype: str
    window: int | None
    use_kernels: bool
    coupled: bool
    num_networks: int
    total_devices: int
    heartbeat_seconds: float | None


def _run_group(
    engines: list[ShardEngine],
    bus,
    delay_env: WirelessEnvironment,
    params: RunParams,
    reducer=None,
    log_heartbeat: bool = False,
):
    """Drive a group of shard engines through every slot in lockstep.

    Returns the per-engine payloads: full shard results (gather mode) or the
    reducer's per-shard states (streaming mode, ``params.window`` set).
    """
    if reducer is not None:
        from repro.analysis.reducers import ShardWindow  # lazy: import cycle

    num_slots = params.num_slots
    needs_feedback = any(engine.needs_feedback for engine in engines)
    bandwidths = engines[0].bandwidths
    scale_ref = engines[0].scale_ref
    net_order = engines[0].net_ids
    delay_table = None
    if not params.coupled:
        # Stream-free delay models are pure per-network constants: sample
        # each network once (consuming nothing) and resolve a slot's
        # switchers with one vectorized table lookup instead of a Python
        # call per switching device — at megascale the early learning phase
        # switches most of the population every slot.
        delay_table = np.asarray(
            [
                delay_env.switching_delay(int(network_id))
                for network_id in net_order
            ],
            dtype=float,
        )
    states: list = [None] * len(engines)
    window = params.window
    window_start = 0
    group_devices = sum(len(engine.device_ids) for engine in engines)
    started = time.monotonic()
    last_beat = started

    for slot in range(1, num_slots + 1):
        local_counts = engines[0].begin(slot)
        if len(engines) > 1:
            local_counts = local_counts.copy()
            for engine in engines[1:]:
                local_counts += engine.begin(slot)
        counts = bus.reduce_counts(slot, local_counts)

        per_engine_switchers: list[int] = []
        group_rows: list[np.ndarray] = []
        group_nets: list[np.ndarray] = []
        for engine in engines:
            rows, nets = engine.observe(slot, counts)
            per_engine_switchers.append(rows.size)
            if rows.size:
                group_rows.append(rows + engine.row_offset)
                group_nets.append(nets)
        rows_global = (
            np.concatenate(group_rows)
            if group_rows
            else np.empty(0, dtype=np.intp)
        )
        nets_global = (
            np.concatenate(group_nets)
            if group_nets
            else np.empty(0, dtype=np.int64)
        )

        if params.coupled:
            # Stochastic delay model: every worker replays the *global*
            # ascending-device-order draw on its own RNG replica, keeping
            # the environment streams in lockstep across shard counts.
            all_nets, offset = bus.exchange_switchers(
                slot, rows_global, nets_global
            )
            if all_nets.size:
                delays_all = np.asarray(
                    delay_env.switching_delays(
                        [int(net) for net in all_nets]
                    ),
                    dtype=float,
                )
                group_delays = delays_all[offset : offset + nets_global.size]
            else:
                group_delays = np.empty(0, dtype=float)
        elif nets_global.size:
            # Stream-free delay model: sampling consumes no RNG, so the
            # group resolves its own switchers without any exchange.
            group_delays = delay_table[
                np.searchsorted(net_order, nets_global)
            ]
        else:
            group_delays = np.empty(0, dtype=float)

        member_gain = join_gain = None
        if needs_feedback:
            member_gain, join_gain = equal_share_feedback(
                counts, bandwidths, scale_ref
            )

        position = 0
        for engine, switcher_count in zip(engines, per_engine_switchers):
            engine.complete(
                slot,
                group_delays[position : position + switcher_count],
                member_gain,
                join_gain,
            )
            position += switcher_count

        if reducer is not None and (
            slot - window_start == window or slot == num_slots
        ):
            width = slot - window_start
            for index, engine in enumerate(engines):
                shard_window = ShardWindow(
                    result=engine.window_result(width),
                    slot_start=window_start,
                    total_slots=num_slots,
                    seed=params.seed_label,
                )
                states[index] = reducer.shard_map(shard_window, states[index])
                engine.reset_window(slot)
            window_start = slot

        if params.heartbeat_seconds is not None and log_heartbeat:
            now = time.monotonic()
            if now - last_beat >= params.heartbeat_seconds:
                elapsed = now - started
                logger.info(
                    "sharded run: slot %d/%d (%.0f%%), "
                    "%.2e device-slots/s in this group",
                    slot,
                    num_slots,
                    100.0 * slot / num_slots,
                    group_devices * slot / max(elapsed, 1e-9),
                )
                last_beat = now

    for engine in engines:
        engine.flush_policies()
    if reducer is not None:
        return states
    return [engine.result() for engine in engines]


def _stitch(
    shard_results: list[SimulationResult], scenario_name: str
) -> SimulationResult:
    """Concatenate shard results (ascending device ranges) into one result."""
    if len(shard_results) == 1:
        return shard_results[0]
    first = shard_results[0]
    device_ids = tuple(
        device_id for result in shard_results for device_id in result.device_ids
    )
    policy_names: dict = {}
    resets: dict = {}
    for result in shard_results:
        policy_names.update(result.policy_names)
        resets.update(result.resets)
    return SimulationResult(
        scenario_name=scenario_name,
        seed=first.seed,
        num_slots=first.num_slots,
        slot_duration_s=first.slot_duration_s,
        networks=first.networks,
        device_ids=device_ids,
        policy_names=policy_names,
        choices_2d=np.concatenate([r.choices_2d for r in shard_results]),
        rates_2d=np.concatenate([r.rates_2d for r in shard_results]),
        delays_2d=np.concatenate([r.delays_2d for r in shard_results]),
        switches_2d=np.concatenate([r.switches_2d for r in shard_results]),
        active_2d=np.concatenate([r.active_2d for r in shard_results]),
        probabilities_3d=(
            np.concatenate([r.probabilities_3d for r in shard_results])
            if first.probabilities_3d is not None
            else None
        ),
        resets=resets,
    )


def _shard_worker(
    worker_index: int,
    num_workers: int,
    worker_device_offsets: list[int],
    specs: list,
    seed_slices: list[np.ndarray],
    params: RunParams,
    reducer,
    counts_array,
    switcher_array,
    switcher_counts_array,
    barrier,
    queue,
) -> None:
    """Worker-process entry point: drive one contiguous group of shards."""
    import traceback

    try:
        counts_view = np.frombuffer(counts_array, dtype=np.int64).reshape(
            2, num_workers, params.num_networks
        )
        switcher_view = switcher_counts_view = None
        if switcher_array is not None:
            switcher_view = np.frombuffer(
                switcher_array, dtype=np.int64
            ).reshape(2, params.total_devices, 2)
            switcher_counts_view = np.frombuffer(
                switcher_counts_array, dtype=np.int64
            ).reshape(2, num_workers)
        engines = [
            ShardEngine(
                spec,
                seeds,
                params.seed_label,
                params.num_slots,
                params.record_probabilities,
                params.dtype,
                params.window,
                params.use_kernels,
            )
            for spec, seeds in zip(specs, seed_slices)
        ]
        delay_env = WirelessEnvironment(
            engines[0].scenario,
            np.random.default_rng(params.environment_seed),
        )
        bus = SharedMemoryBus(
            worker_index,
            num_workers,
            worker_device_offsets,
            counts_view,
            switcher_view,
            switcher_counts_view,
            barrier,
        )
        payloads = _run_group(
            engines,
            bus,
            delay_env,
            params,
            reducer,
            log_heartbeat=worker_index == 0,
        )
        queue.put((worker_index, "ok", payloads))
    except BaseException:
        try:
            barrier.abort()
        except Exception:
            pass
        queue.put((worker_index, "error", traceback.format_exc()))


class ShardedSlotExecutor(SlotExecutor):
    """Device-axis sharded execution with a per-slot occupancy all-reduce.

    Parameters
    ----------
    shards:
        Number of device blocks (clamped to the population size).
    workers:
        ``1`` drives every shard in-process (serial lockstep); larger values
        spread the shards over that many processes synchronised through a
        shared-memory ring.  Results are bit-identical either way.
    dtype:
        Recorder precision for the floating-point blocks (``"float32"``
        halves per-shard RSS; dynamics are dtype-independent).
    window_slots:
        Slot-window width of the streaming reduced path
        (:meth:`map_reduced`); bounds per-shard recorder memory at
        ``O(devices/shards × window_slots)``.
    strict:
        Raise instead of falling back to the vectorized backend when the
        scenario's gain model is outside the shardable (equal-share) class.
    heartbeat_seconds:
        Emit a progress log line (logger ``repro.sim.sharded``) roughly this
        often during a run; ``None`` disables.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = 2,
        workers: int = 1,
        dtype: str = "float64",
        window_slots: int = DEFAULT_WINDOW_SLOTS,
        use_kernels: bool = True,
        strict: bool = False,
        heartbeat_seconds: float | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if window_slots < 1:
            raise ValueError(f"window_slots must be >= 1, got {window_slots}")
        self.shards = shards
        self.workers = workers
        self.dtype = dtype
        self.window_slots = window_slots
        self.use_kernels = use_kernels
        self.strict = strict
        self.heartbeat_seconds = heartbeat_seconds

    def with_shards(
        self, shards: int, workers: int | None = None
    ) -> "ShardedSlotExecutor":
        """A copy configured for ``shards`` blocks (and optionally workers)."""
        return ShardedSlotExecutor(
            shards=shards,
            workers=self.workers if workers is None else workers,
            dtype=self.dtype,
            window_slots=self.window_slots,
            use_kernels=self.use_kernels,
            strict=self.strict,
            heartbeat_seconds=self.heartbeat_seconds,
        )

    # ----------------------------------------------------------- capability

    @staticmethod
    def supports_scenario(scenario: Scenario) -> bool:
        """Whether the scenario's physics is shardable.

        Equal-share rates depend on peers only through the per-network
        occupancy counts — the quantity the all-reduce exchanges.  Any other
        gain model consumes the environment RNG over the global association
        grouping, which sharded execution cannot replay.
        """
        return type(scenario.gain_model) is EqualShareModel

    def _unsupported(self, scenario: Scenario):
        if self.strict:
            raise ValueError(
                f"backend 'sharded' cannot execute scenario "
                f"{scenario.name!r}: gain model "
                f"{type(scenario.gain_model).__name__} requires the global "
                "association grouping (only the equal-share model is "
                "shardable); use the vectorized backend or strict=False"
            )
        from repro.sim.backends.vectorized import VectorizedSlotExecutor

        return VectorizedSlotExecutor(use_kernels=self.use_kernels)

    # ------------------------------------------------------------ execution

    def execute(
        self,
        scenario: Scenario,
        seed=0,
        record_probabilities: bool = True,
    ) -> SimulationResult:
        """One run, shards gathered and stitched into the full result."""
        if not self.supports_scenario(scenario):
            return self._unsupported(scenario).execute(
                scenario, seed, record_probabilities
            )
        plan = ShardPlan.from_scenario(scenario, self.shards)
        shard_results = self._execute_plan(
            plan,
            seed,
            reducer=None,
            record_probabilities=record_probabilities,
            window=None,
        )
        return _stitch(shard_results, scenario.name)

    def map_reduced(
        self,
        scenario: Scenario,
        seed,
        reducer,
        record_probabilities: bool | None = None,
    ):
        """One run reduced to ``reducer.map``'s payload, in-shard if possible.

        Shard-capable reducers stream over bounded slot windows inside each
        shard (no process ever holds the full blocks); others fall back to
        gather-then-map.  Either way the returned payload is exactly what
        ``reducer.map(full_result)`` would produce (up to float summation
        order), so ``run_many``'s merge/finalize machinery is unaffected.
        """
        if reducer.shard_capable() and self.supports_scenario(scenario):
            plan = ShardPlan.from_scenario(scenario, self.shards)
            return self._reduce_plan(plan, seed, reducer)
        wants_probabilities = (
            reducer.needs_probabilities
            if record_probabilities is None
            else record_probabilities
        )
        return reducer.map(
            self.execute(scenario, seed, record_probabilities=wants_probabilities)
        )

    def execute_population(
        self, population: HomogeneousPopulation, seed, reducer
    ):
        """A generative-population run on the streaming reduced path.

        The full device list never materialises in any process — each shard
        builds its own slice from the population factory.  Requires a
        shard-capable reducer (there is no gather fallback at this scale).
        """
        if not reducer.shard_capable():
            raise ValueError(
                f"reducer {type(reducer).__name__} cannot reduce over a "
                "device partition; megascale populations require a "
                "shard-capable reducer (summary/downloads/timeseries)"
            )
        plan = ShardPlan.from_population(population, self.shards)
        return self._reduce_plan(plan, seed, reducer)

    # ------------------------------------------------------------- internals

    def _reduce_plan(self, plan: ShardPlan, seed, reducer):
        num_slots = self._plan_slots(plan)
        window = min(self.window_slots, num_slots)
        shard_states = self._execute_plan(
            plan,
            seed,
            reducer=reducer,
            record_probabilities=False,
            window=window,
        )
        merged = shard_states[0]
        for state in shard_states[1:]:
            merged = reducer.shard_merge(merged, state)
        return reducer.shard_finalize(merged)

    @staticmethod
    def _plan_slots(plan: ShardPlan) -> int:
        spec = plan.specs[0]
        if spec.scenario is not None:
            return spec.scenario.horizon_slots
        return spec.population.horizon_slots

    @staticmethod
    def _delay_coupled(plan: ShardPlan) -> bool:
        spec = plan.specs[0]
        model = (
            spec.scenario.delay_model
            if spec.scenario is not None
            else spec.population.delay_model
        )
        return not getattr(model, "stream_free", False)

    def _execute_plan(
        self,
        plan: ShardPlan,
        seed,
        reducer,
        record_probabilities: bool,
        window: int | None,
    ) -> list:
        environment_seed, policy_seeds, label = derive_run_streams(
            seed, plan.num_devices
        )
        num_slots = self._plan_slots(plan)
        first_spec = plan.specs[0]
        num_networks = (
            len(first_spec.scenario.networks)
            if first_spec.scenario is not None
            else len(first_spec.population.bandwidths)
        )
        params = RunParams(
            num_slots=num_slots,
            environment_seed=environment_seed,
            seed_label=label,
            record_probabilities=record_probabilities,
            dtype=self.dtype,
            window=window,
            use_kernels=self.use_kernels,
            coupled=self._delay_coupled(plan),
            num_networks=num_networks,
            total_devices=plan.num_devices,
            heartbeat_seconds=self.heartbeat_seconds,
        )
        seed_slices = [
            policy_seeds[spec.seed_positions] for spec in plan.specs
        ]

        workers = min(self.workers, plan.shards)
        if workers <= 1:
            engines = [
                ShardEngine(
                    spec,
                    seeds,
                    label,
                    num_slots,
                    record_probabilities,
                    self.dtype,
                    window,
                    self.use_kernels,
                )
                for spec, seeds in zip(plan.specs, seed_slices)
            ]
            delay_env = WirelessEnvironment(
                engines[0].scenario, np.random.default_rng(environment_seed)
            )
            return _run_group(
                engines,
                SerialBus(),
                delay_env,
                params,
                reducer,
                log_heartbeat=True,
            )
        return self._execute_parallel(
            plan, params, seed_slices, reducer, workers
        )

    def _execute_parallel(
        self,
        plan: ShardPlan,
        params: RunParams,
        seed_slices: list[np.ndarray],
        reducer,
        workers: int,
    ) -> list:
        import multiprocessing as mp

        ctx = mp.get_context()
        # Contiguous shard groups per worker, preserving ascending device
        # ranges (the switcher exchange relies on worker-order concatenation
        # being globally sorted).
        groups = shard_boundaries(plan.shards, workers)
        worker_device_offsets = [
            plan.specs[group_lo].lo for group_lo, _ in groups
        ]

        counts_array = ctx.RawArray("q", 2 * workers * params.num_networks)
        switcher_array = switcher_counts_array = None
        if params.coupled:
            switcher_array = ctx.RawArray("q", 2 * params.total_devices * 2)
            switcher_counts_array = ctx.RawArray("q", 2 * workers)
        barrier = ctx.Barrier(workers)
        queue = ctx.Queue()

        processes = []
        for index, (group_lo, group_hi) in enumerate(groups):
            processes.append(
                ctx.Process(
                    target=_shard_worker,
                    args=(
                        index,
                        workers,
                        worker_device_offsets,
                        list(plan.specs[group_lo:group_hi]),
                        seed_slices[group_lo:group_hi],
                        params,
                        reducer,
                        counts_array,
                        switcher_array,
                        switcher_counts_array,
                        barrier,
                        queue,
                    ),
                    daemon=True,
                )
            )
        for process in processes:
            process.start()

        payloads_by_worker: dict[int, list] = {}
        error: str | None = None
        try:
            import queue as queue_module

            # Workers report once, at the end of the run, which can be
            # arbitrarily far away (a megascale run is tens of minutes) —
            # so poll with a short timeout and keep waiting for as long as
            # every worker is alive.  A worker that dies without reporting
            # (OOM-kill, segfault) fails the run promptly instead; workers
            # that lose a *peer* fail themselves via the barrier timeout.
            while len(payloads_by_worker) < workers and error is None:
                try:
                    worker_index, status, payload = queue.get(timeout=15.0)
                except queue_module.Empty:
                    dead = [
                        p.pid for p in processes if p.exitcode not in (None, 0)
                    ]
                    if dead:
                        error = (
                            f"worker process(es) {dead} exited without "
                            "reporting a result"
                        )
                    continue
                if status == "ok":
                    payloads_by_worker[worker_index] = payload
                elif error is None:
                    error = payload
        finally:
            if error is not None:
                # Unblock any worker parked at the barrier, then stop them.
                try:
                    barrier.abort()
                except Exception:
                    pass
                for process in processes:
                    process.join(timeout=5.0)
                for process in processes:
                    if process.is_alive():
                        process.terminate()
            for process in processes:
                process.join(timeout=BARRIER_TIMEOUT_S)
        if error is not None:
            raise RuntimeError(f"sharded worker failed:\n{error}")
        ordered: list = []
        for index in range(workers):
            ordered.extend(payloads_by_worker[index])
        return ordered
