"""The sharded population executor.

:class:`ShardedSlotExecutor` partitions a run's device population into
``shards`` contiguous blocks (:mod:`repro.sim.sharded.plan`), executes each
block with the existing batched kernels and churn machinery
(:mod:`repro.sim.sharded.engine`), and synchronises the blocks once per slot
with an all-reduce of the per-network occupancy vector
(:mod:`repro.sim.sharded.bus`).  ``workers=1`` drives every shard in-process
(serial lockstep — the debugging and bit-exactness mode); ``workers>1``
spreads the shards over worker processes communicating through a
shared-memory ring.

Result assembly has two shapes:

* :meth:`execute` — the standard backend contract: every shard's columnar
  blocks are gathered and stitched into one full
  :class:`~repro.sim.metrics.SimulationResult`, bit-exact against the
  vectorized backend for any shard/worker count.  Appropriate for
  populations whose blocks fit one process.
* :meth:`map_reduced` — the megascale path: each shard applies a
  shard-capable :class:`~repro.analysis.reducers.Reducer` to bounded slot
  *windows* of its own blocks as the run advances, so no process ever holds
  ``O(devices × slots)`` state; only kilobyte-to-megabyte shard summaries
  are merged at the end.  Reducers that cannot reduce over a device
  partition (e.g. stability, which needs the global mixed-strategy tensor)
  transparently fall back to gather-then-map.

Fault tolerance (see :mod:`repro.sim.sharded.checkpoint` and
:mod:`repro.sim.sharded.faults`): a
:class:`~repro.sim.sharded.checkpoint.CheckpointConfig` makes every worker
snapshot its shard state periodically; ``resume_from=`` restores a run at
its last committed checkpoint and continues bit-exact; a supervision loop
detects crashed or hung workers (exit-code polling parent-side, bounded
barrier waits worker-side), restarts from the last checkpoint with
exponential backoff, and surfaces
:class:`~repro.sim.sharded.faults.ShardFailureError` with per-worker
diagnostics when retries are exhausted.  A
:class:`~repro.sim.sharded.faults.FaultPlan` injects crashes, stalls and
checkpoint corruption so tests and the ``--suite faults`` benchmark prove
recovery works rather than assume it.

Physics support: the closed-form equal-share gain model — exactly the class
the vectorized backend's fast path covers.  Other gain models consume the
environment RNG per network over the *global* association grouping, which a
device-partitioned execution cannot replay without shipping every choice;
such scenarios fall back to the vectorized backend (or raise with
``strict=True``).  Delay models need no such restriction: stream-free models
(:class:`~repro.sim.delay.NoDelayModel` / ``ConstantDelayModel``) sample
shard-locally, and stochastic ones replay the global ascending-device-order
draw on every worker's environment-RNG replica via the per-slot switcher
exchange.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.game.gain import EqualShareModel
from repro.profiling import profile_run
from repro.sim.backends.base import SlotExecutor, derive_run_streams
from repro.sim.backends.membership import equal_share_feedback
from repro.sim.environment import WirelessEnvironment
from repro.sim.metrics import SimulationResult
from repro.sim.scenario import Scenario
from repro.sim.sharded.bus import SerialBus, SharedMemoryBus
from repro.sim.sharded.checkpoint import (
    CheckpointConfig,
    ResumeState,
    checkpoint_dir,
    commit_manifest,
    load_environment,
    load_shard_state,
    resolve_resume,
    run_fingerprint,
    shard_file_name,
    write_environment,
    write_shard_states,
)
from repro.sim.sharded.engine import ShardEngine
from repro.sim.sharded.faults import (
    BusTimeoutError,
    FaultPlan,
    InjectedFault,
    ShardFailureError,
    SupervisionConfig,
    WorkerCrashError,
    note_injected_fault,
)
from repro.sim.sharded.plan import (
    HomogeneousPopulation,
    ShardPlan,
    shard_boundaries,
)
from repro.telemetry import get_telemetry, set_proc_label

logger = logging.getLogger("repro.sim.sharded")

#: Default slot-window width for the streaming (reduced) path.
DEFAULT_WINDOW_SLOTS = 256

#: Failure classes the supervision loop may recover from by restarting the
#: run from its last checkpoint.
RECOVERABLE_FAILURES = (InjectedFault, BusTimeoutError, WorkerCrashError)


@dataclass(frozen=True)
class RunParams:
    """Picklable per-run execution parameters shared by serial and workers."""

    num_slots: int
    environment_seed: int
    seed_label: int
    record_probabilities: bool
    dtype: str
    window: int | None
    use_kernels: bool
    coupled: bool
    num_networks: int
    total_devices: int
    heartbeat_seconds: float | None
    num_shards: int = 1
    attempt: int = 0
    barrier_timeout_s: float = SupervisionConfig().barrier_timeout_s
    checkpoint: CheckpointConfig | None = None
    fingerprint: str | None = None
    fingerprint_config: dict | None = field(default=None)
    fault_plan: FaultPlan | None = None
    resume: ResumeState | None = None


def _maybe_inject_kill(
    params: RunParams, worker_index: int, slot: int, point: str,
    allow_hard_exit: bool,
) -> None:
    """Fire a scheduled :class:`KillWorker` fault, if one lands here."""
    plan = params.fault_plan
    if plan is None:
        return
    fault = plan.kill_at(worker_index, slot, params.attempt, point)
    if fault is None:
        return
    note_injected_fault(
        "kill_worker",
        worker_index,
        slot,
        point=point,
        attempt=params.attempt,
        hard=fault.hard and allow_hard_exit,
    )
    if fault.hard and allow_hard_exit:
        # Simulated OOM-kill/preemption: die without reporting, cleanup or
        # barrier abort — peers must discover it via the barrier timeout,
        # the parent via the exit code.
        os._exit(17)
    raise InjectedFault(
        f"injected crash: worker {worker_index} at slot {slot} "
        f"({point}, attempt {params.attempt})"
    )


def _build_group(
    specs: list, seed_slices: list[np.ndarray], params: RunParams
) -> tuple[list[ShardEngine], list, WirelessEnvironment, int, int]:
    """Build a group's engines fresh, or restore them from a checkpoint.

    Returns ``(engines, reducer_states, delay_env, start_slot,
    window_start)``.  The restore path checksum-verifies every file against
    the manifest (:class:`~repro.sim.sharded.checkpoint.CheckpointError` on
    damage) and resumes at the slot after the snapshot.
    """
    resume = params.resume
    if resume is not None:
        engines: list[ShardEngine] = []
        states: list = []
        for spec in specs:
            engine, state = load_shard_state(resume, spec.index)
            engines.append(engine)
            states.append(state)
        delay_env = load_environment(resume)
        return engines, states, delay_env, resume.slot + 1, resume.window_start
    engines = [
        ShardEngine(
            spec,
            seeds,
            params.seed_label,
            params.num_slots,
            params.record_probabilities,
            params.dtype,
            params.window,
            params.use_kernels,
        )
        for spec, seeds in zip(specs, seed_slices)
    ]
    delay_env = WirelessEnvironment(
        engines[0].scenario, np.random.default_rng(params.environment_seed)
    )
    return engines, [None] * len(engines), delay_env, 1, 0


def _run_group(
    engines: list[ShardEngine],
    bus,
    delay_env: WirelessEnvironment,
    params: RunParams,
    reducer=None,
    log_heartbeat: bool = False,
    worker_index: int = 0,
    states: list | None = None,
    start_slot: int = 1,
    window_start: int = 0,
    allow_hard_exit: bool = False,
):
    """Drive a group of shard engines through every slot in lockstep.

    Returns the per-engine payloads: full shard results (gather mode) or the
    reducer's per-shard states (streaming mode, ``params.window`` set).
    ``start_slot``/``window_start``/``states`` carry a restored checkpoint's
    cursors; a fresh run starts at slot 1 with empty state.
    """
    if reducer is not None:
        from repro.analysis.reducers import ShardWindow  # lazy: import cycle

    num_slots = params.num_slots
    needs_feedback = any(engine.needs_feedback for engine in engines)
    bandwidths = engines[0].bandwidths
    scale_ref = engines[0].scale_ref
    net_order = engines[0].net_ids
    delay_table = None
    if not params.coupled:
        # Stream-free delay models are pure per-network constants: sample
        # each network once (consuming nothing) and resolve a slot's
        # switchers with one vectorized table lookup instead of a Python
        # call per switching device — at megascale the early learning phase
        # switches most of the population every slot.
        delay_table = np.asarray(
            [
                delay_env.switching_delay(int(network_id))
                for network_id in net_order
            ],
            dtype=float,
        )
    if states is None:
        states = [None] * len(engines)
    window = params.window
    checkpoint = params.checkpoint
    if checkpoint is not None:
        # Kernel draw windows must be exhausted whenever a snapshot is
        # written, so the engines truncate them at the checkpoint cadence.
        for engine in engines:
            engine.draw_barrier_every = checkpoint.every_slots
    fault_plan = params.fault_plan
    group_devices = sum(len(engine.device_ids) for engine in engines)
    prof = profile_run(f"sharded-worker{worker_index}")
    tele = get_telemetry()
    if tele is not None:
        tele.event(
            "worker_start",
            worker=worker_index,
            shards=len(engines),
            start_slot=start_slot,
            devices=group_devices,
            attempt=params.attempt,
        )
        slot_gauge = tele.gauge(f"worker{worker_index}.slot")
        rate_gauge = tele.gauge(f"worker{worker_index}.device_slots_per_second")
    started = time.monotonic()
    last_beat = started

    for slot in range(start_slot, num_slots + 1):
        _maybe_inject_kill(params, worker_index, slot, "begin", allow_hard_exit)
        if prof is not None:
            t = prof.now()
        local_counts = engines[0].begin(slot)
        if len(engines) > 1:
            local_counts = local_counts.copy()
            for engine in engines[1:]:
                local_counts += engine.begin(slot)
        if prof is not None:
            t = prof.add("sampling", t)
        if fault_plan is not None:
            stall = fault_plan.delay_for(worker_index, slot, params.attempt)
            if stall:
                note_injected_fault(
                    "delay_exchange", worker_index, slot, seconds=stall
                )
                time.sleep(stall)
        counts = bus.reduce_counts(slot, local_counts)
        if prof is not None:
            t = prof.add("bus_exchange", t)
        _maybe_inject_kill(params, worker_index, slot, "mid", allow_hard_exit)

        per_engine_switchers: list[int] = []
        group_rows: list[np.ndarray] = []
        group_nets: list[np.ndarray] = []
        for engine in engines:
            rows, nets = engine.observe(slot, counts)
            per_engine_switchers.append(rows.size)
            if rows.size:
                group_rows.append(rows + engine.row_offset)
                group_nets.append(nets)
        rows_global = (
            np.concatenate(group_rows)
            if group_rows
            else np.empty(0, dtype=np.intp)
        )
        nets_global = (
            np.concatenate(group_nets)
            if group_nets
            else np.empty(0, dtype=np.int64)
        )
        if prof is not None:
            t = prof.add("physics", t)

        if params.coupled:
            # Stochastic delay model: every worker replays the *global*
            # ascending-device-order draw on its own RNG replica, keeping
            # the environment streams in lockstep across shard counts.
            all_nets, offset = bus.exchange_switchers(
                slot, rows_global, nets_global
            )
            if all_nets.size:
                delays_all = np.asarray(
                    delay_env.switching_delays(
                        [int(net) for net in all_nets]
                    ),
                    dtype=float,
                )
                group_delays = delays_all[offset : offset + nets_global.size]
            else:
                group_delays = np.empty(0, dtype=float)
        elif nets_global.size:
            # Stream-free delay model: sampling consumes no RNG, so the
            # group resolves its own switchers without any exchange.
            group_delays = delay_table[
                np.searchsorted(net_order, nets_global)
            ]
        else:
            group_delays = np.empty(0, dtype=float)
        if prof is not None:
            t = prof.add("delays", t)

        member_gain = join_gain = None
        if needs_feedback:
            member_gain, join_gain = equal_share_feedback(
                counts, bandwidths, scale_ref
            )

        position = 0
        for engine, switcher_count in zip(engines, per_engine_switchers):
            engine.complete(
                slot,
                group_delays[position : position + switcher_count],
                member_gain,
                join_gain,
            )
            position += switcher_count
        if prof is not None:
            t = prof.add("reward", t)

        if reducer is not None and (
            slot - window_start == window or slot == num_slots
        ):
            width = slot - window_start
            for index, engine in enumerate(engines):
                shard_window = ShardWindow(
                    result=engine.window_result(width),
                    slot_start=window_start,
                    total_slots=num_slots,
                    seed=params.seed_label,
                )
                states[index] = reducer.shard_map(shard_window, states[index])
                engine.reset_window(slot)
            window_start = slot
            if prof is not None:
                t = prof.add("recorder", t)

        if checkpoint is not None and slot % checkpoint.every_slots == 0:
            # Snapshot after the window flush so the manifest's cursors and
            # the pickled reducer states describe the same instant.  When the
            # cadence lands exactly on a flush the recorder was just zeroed,
            # so the snapshot may elide its blocks entirely.
            ckpt_started = time.monotonic()
            write_shard_states(
                checkpoint,
                slot,
                engines,
                states,
                drop_recorder=(reducer is not None and window_start == slot),
            )
            if worker_index == 0:
                write_environment(checkpoint, slot, delay_env)
            bus.checkpoint_sync(slot)
            if worker_index == 0:
                commit_manifest(
                    checkpoint,
                    slot,
                    params.fingerprint,
                    params.fingerprint_config or {},
                    window_start,
                    params.num_shards,
                )
                if fault_plan is not None:
                    for fault in fault_plan.corruptions_at(slot):
                        note_injected_fault(
                            "corrupt_checkpoint",
                            worker_index,
                            slot,
                            shard=fault.shard,
                        )
                        _garble_checkpoint_file(checkpoint, slot, fault.shard)
            if tele is not None:
                tele.event(
                    "checkpoint_write",
                    worker=worker_index,
                    slot=slot,
                    seconds=round(time.monotonic() - ckpt_started, 6),
                )
            if prof is not None:
                t = prof.add("checkpoint", t)

        _maybe_inject_kill(params, worker_index, slot, "end", allow_hard_exit)

        # Heartbeats: a telemetry-enabled run emits `progress` events (plus
        # live gauges) instead of the old ad-hoc log line, which remains the
        # fallback for log-only runs.
        if params.heartbeat_seconds is not None and (
            log_heartbeat or tele is not None
        ):
            now = time.monotonic()
            if now - last_beat >= params.heartbeat_seconds:
                elapsed = now - started
                rate = group_devices * slot / max(elapsed, 1e-9)
                if tele is not None:
                    slot_gauge.set(slot)
                    rate_gauge.set(rate)
                    tele.event(
                        "progress",
                        worker=worker_index,
                        slot=slot,
                        num_slots=num_slots,
                        device_slots_per_second=round(rate, 1),
                    )
                elif log_heartbeat:
                    logger.info(
                        "sharded run: slot %d/%d (%.0f%%), "
                        "%.2e device-slots/s in this group",
                        slot,
                        num_slots,
                        100.0 * slot / num_slots,
                        rate,
                    )
                last_beat = now

    for engine in engines:
        engine.flush_policies()
    if prof is not None:
        prof.devices = group_devices
        prof.slots = num_slots
        prof.emit(
            scenario=engines[0].scenario.name,
            seed=params.seed_label,
            shards=len(engines),
        )
    if tele is not None:
        waits = bus.wait_stats()
        if waits is not None:
            tele.event("barrier_waits", worker=worker_index, **waits)
        truncations: dict[str, int] = {}
        for engine in engines:
            for reason, count in engine.window_truncations.items():
                truncations[reason] = truncations.get(reason, 0) + count
        if truncations:
            tele.event(
                "fused_windows",
                tag=f"sharded-worker{worker_index}",
                windows=sum(truncations.values()),
                reasons=truncations,
            )
        elapsed = time.monotonic() - started
        tele.event(
            "worker_end",
            worker=worker_index,
            slots=num_slots,
            seconds=round(elapsed, 6),
            device_slots_per_second=round(
                group_devices * num_slots / max(elapsed, 1e-9), 1
            ),
        )
    if reducer is not None:
        return states
    return [engine.result() for engine in engines]


def _garble_checkpoint_file(
    checkpoint: CheckpointConfig, slot: int, shard_index: int
) -> None:
    """Flip a byte mid-file (fault injection: simulated disk damage)."""
    path = checkpoint_dir(checkpoint, slot) / shard_file_name(shard_index)
    data = bytearray(path.read_bytes())
    if data:
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))


def _stitch(
    shard_results: list[SimulationResult], scenario_name: str
) -> SimulationResult:
    """Concatenate shard results (ascending device ranges) into one result."""
    if len(shard_results) == 1:
        return shard_results[0]
    first = shard_results[0]
    device_ids = tuple(
        device_id for result in shard_results for device_id in result.device_ids
    )
    policy_names: dict = {}
    resets: dict = {}
    for result in shard_results:
        policy_names.update(result.policy_names)
        resets.update(result.resets)
    return SimulationResult(
        scenario_name=scenario_name,
        seed=first.seed,
        num_slots=first.num_slots,
        slot_duration_s=first.slot_duration_s,
        networks=first.networks,
        device_ids=device_ids,
        policy_names=policy_names,
        choices_2d=np.concatenate([r.choices_2d for r in shard_results]),
        rates_2d=np.concatenate([r.rates_2d for r in shard_results]),
        delays_2d=np.concatenate([r.delays_2d for r in shard_results]),
        switches_2d=np.concatenate([r.switches_2d for r in shard_results]),
        active_2d=np.concatenate([r.active_2d for r in shard_results]),
        probabilities_3d=(
            np.concatenate([r.probabilities_3d for r in shard_results])
            if first.probabilities_3d is not None
            else None
        ),
        resets=resets,
    )


def _shard_worker(
    worker_index: int,
    num_workers: int,
    worker_device_offsets: list[int],
    specs: list,
    seed_slices: list[np.ndarray],
    params: RunParams,
    reducer,
    counts_array,
    switcher_array,
    switcher_counts_array,
    progress_array,
    barrier,
    queue,
) -> None:
    """Worker-process entry point: drive one contiguous group of shards."""
    import traceback

    set_proc_label(f"shard-worker{worker_index}")
    try:
        counts_view = np.frombuffer(counts_array, dtype=np.int64).reshape(
            2, num_workers, params.num_networks
        )
        switcher_view = switcher_counts_view = None
        if switcher_array is not None:
            switcher_view = np.frombuffer(
                switcher_array, dtype=np.int64
            ).reshape(2, params.total_devices, 2)
            switcher_counts_view = np.frombuffer(
                switcher_counts_array, dtype=np.int64
            ).reshape(2, num_workers)
        progress_view = np.frombuffer(
            progress_array, dtype=np.int64
        ).reshape(num_workers, 2)
        engines, states, delay_env, start_slot, window_start = _build_group(
            specs, seed_slices, params
        )
        bus = SharedMemoryBus(
            worker_index,
            num_workers,
            worker_device_offsets,
            counts_view,
            switcher_view,
            switcher_counts_view,
            barrier,
            timeout_s=params.barrier_timeout_s,
            progress_view=progress_view,
        )
        payloads = _run_group(
            engines,
            bus,
            delay_env,
            params,
            reducer,
            log_heartbeat=worker_index == 0,
            worker_index=worker_index,
            states=states,
            start_slot=start_slot,
            window_start=window_start,
            allow_hard_exit=True,
        )
        queue.put((worker_index, "ok", payloads))
    except BaseException:
        try:
            barrier.abort()
        except Exception:
            pass
        queue.put((worker_index, "error", traceback.format_exc()))


class ShardedSlotExecutor(SlotExecutor):
    """Device-axis sharded execution with a per-slot occupancy all-reduce.

    Parameters
    ----------
    shards:
        Number of device blocks (clamped to the population size).
    workers:
        ``1`` drives every shard in-process (serial lockstep); larger values
        spread the shards over that many processes synchronised through a
        shared-memory ring.  Results are bit-identical either way.
    dtype:
        Recorder precision for the floating-point blocks (``"float32"``
        halves per-shard RSS; dynamics are dtype-independent).
    window_slots:
        Slot-window width of the streaming reduced path
        (:meth:`map_reduced`); bounds per-shard recorder memory at
        ``O(devices/shards × window_slots)``.
    strict:
        Raise instead of falling back to the vectorized backend when the
        scenario's gain model is outside the shardable (equal-share) class.
    heartbeat_seconds:
        Emit a progress log line (logger ``repro.sim.sharded``) roughly this
        often during a run; ``None`` disables.
    checkpoint:
        A :class:`~repro.sim.sharded.checkpoint.CheckpointConfig` enabling
        periodic shard-state snapshots (and checkpoint-based crash
        recovery); ``None`` disables durability.
    resume_from:
        A checkpoint directory (the configured ``checkpoint.dir`` or one
        specific ``ckpt_<slot>`` subdirectory) to restore the run from.
        The manifest is validated against this run's configuration; a
        mismatch or missing checkpoint fails loudly, and the resumed run
        is bit-identical to one that never stopped.
    supervision:
        Worker supervision knobs (barrier timeout, restart budget,
        backoff); defaults to
        :class:`~repro.sim.sharded.faults.SupervisionConfig`.
    fault_plan:
        Test-only fault injection schedule
        (:class:`~repro.sim.sharded.faults.FaultPlan`); production runs
        leave it ``None``.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = 2,
        workers: int = 1,
        dtype: str = "float64",
        window_slots: int = DEFAULT_WINDOW_SLOTS,
        use_kernels: bool = True,
        strict: bool = False,
        heartbeat_seconds: float | None = None,
        checkpoint: CheckpointConfig | None = None,
        resume_from: str | Path | None = None,
        supervision: SupervisionConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if window_slots < 1:
            raise ValueError(f"window_slots must be >= 1, got {window_slots}")
        self.shards = shards
        self.workers = workers
        self.dtype = dtype
        self.window_slots = window_slots
        self.use_kernels = use_kernels
        self.strict = strict
        self.heartbeat_seconds = heartbeat_seconds
        self.checkpoint = checkpoint
        self.resume_from = None if resume_from is None else str(resume_from)
        self.supervision = supervision or SupervisionConfig()
        self.fault_plan = fault_plan

    def _copy(self, **overrides) -> "ShardedSlotExecutor":
        settings = dict(
            shards=self.shards,
            workers=self.workers,
            dtype=self.dtype,
            window_slots=self.window_slots,
            use_kernels=self.use_kernels,
            strict=self.strict,
            heartbeat_seconds=self.heartbeat_seconds,
            checkpoint=self.checkpoint,
            resume_from=self.resume_from,
            supervision=self.supervision,
            fault_plan=self.fault_plan,
        )
        settings.update(overrides)
        return ShardedSlotExecutor(**settings)

    def with_shards(
        self, shards: int, workers: int | None = None
    ) -> "ShardedSlotExecutor":
        """A copy configured for ``shards`` blocks (and optionally workers)."""
        return self._copy(
            shards=shards,
            workers=self.workers if workers is None else workers,
        )

    def with_durability(
        self,
        checkpoint: CheckpointConfig | None = None,
        resume_from: str | Path | None = None,
    ) -> "ShardedSlotExecutor":
        """A copy with checkpointing/resume configured (``run_many`` hook)."""
        return self._copy(checkpoint=checkpoint, resume_from=resume_from)

    # ----------------------------------------------------------- capability

    @staticmethod
    def supports_scenario(scenario: Scenario) -> bool:
        """Whether the scenario's physics is shardable.

        Equal-share rates depend on peers only through the per-network
        occupancy counts — the quantity the all-reduce exchanges.  Any other
        gain model consumes the environment RNG over the global association
        grouping, which sharded execution cannot replay.
        """
        return type(scenario.gain_model) is EqualShareModel

    def _unsupported(self, scenario: Scenario):
        if self.strict:
            raise ValueError(
                f"backend 'sharded' cannot execute scenario "
                f"{scenario.name!r}: gain model "
                f"{type(scenario.gain_model).__name__} requires the global "
                "association grouping (only the equal-share model is "
                "shardable); use the vectorized backend or strict=False"
            )
        if self.checkpoint is not None or self.resume_from is not None:
            logger.warning(
                "scenario %r falls back to the vectorized backend, which "
                "does not checkpoint; the run executes without durability",
                scenario.name,
            )
        from repro.sim.backends.vectorized import VectorizedSlotExecutor

        return VectorizedSlotExecutor(use_kernels=self.use_kernels)

    # ------------------------------------------------------------ execution

    def execute(
        self,
        scenario: Scenario,
        seed=0,
        record_probabilities: bool = True,
    ) -> SimulationResult:
        """One run, shards gathered and stitched into the full result."""
        if not self.supports_scenario(scenario):
            return self._unsupported(scenario).execute(
                scenario, seed, record_probabilities
            )
        plan = ShardPlan.from_scenario(scenario, self.shards)
        shard_results = self._execute_plan(
            plan,
            seed,
            reducer=None,
            record_probabilities=record_probabilities,
            window=None,
        )
        return _stitch(shard_results, scenario.name)

    def map_reduced(
        self,
        scenario: Scenario,
        seed,
        reducer,
        record_probabilities: bool | None = None,
    ):
        """One run reduced to ``reducer.map``'s payload, in-shard if possible.

        Shard-capable reducers stream over bounded slot windows inside each
        shard (no process ever holds the full blocks); others fall back to
        gather-then-map.  Either way the returned payload is exactly what
        ``reducer.map(full_result)`` would produce (up to float summation
        order), so ``run_many``'s merge/finalize machinery is unaffected.
        """
        if reducer.shard_capable() and self.supports_scenario(scenario):
            plan = ShardPlan.from_scenario(scenario, self.shards)
            return self._reduce_plan(plan, seed, reducer)
        wants_probabilities = (
            reducer.needs_probabilities
            if record_probabilities is None
            else record_probabilities
        )
        return reducer.map(
            self.execute(scenario, seed, record_probabilities=wants_probabilities)
        )

    def execute_population(
        self, population: HomogeneousPopulation, seed, reducer
    ):
        """A generative-population run on the streaming reduced path.

        The full device list never materialises in any process — each shard
        builds its own slice from the population factory.  Requires a
        shard-capable reducer (there is no gather fallback at this scale).
        """
        if not reducer.shard_capable():
            raise ValueError(
                f"reducer {type(reducer).__name__} cannot reduce over a "
                "device partition; megascale populations require a "
                "shard-capable reducer (summary/downloads/timeseries)"
            )
        plan = ShardPlan.from_population(population, self.shards)
        return self._reduce_plan(plan, seed, reducer)

    # ------------------------------------------------------------- internals

    def _reduce_plan(self, plan: ShardPlan, seed, reducer):
        num_slots = self._plan_slots(plan)
        window = min(self.window_slots, num_slots)
        shard_states = self._execute_plan(
            plan,
            seed,
            reducer=reducer,
            record_probabilities=False,
            window=window,
        )
        merged = shard_states[0]
        for state in shard_states[1:]:
            merged = reducer.shard_merge(merged, state)
        return reducer.shard_finalize(merged)

    @staticmethod
    def _plan_slots(plan: ShardPlan) -> int:
        spec = plan.specs[0]
        if spec.scenario is not None:
            return spec.scenario.horizon_slots
        return spec.population.horizon_slots

    @staticmethod
    def _delay_coupled(plan: ShardPlan) -> bool:
        spec = plan.specs[0]
        model = (
            spec.scenario.delay_model
            if spec.scenario is not None
            else spec.population.delay_model
        )
        return not getattr(model, "stream_free", False)

    def _execute_plan(
        self,
        plan: ShardPlan,
        seed,
        reducer,
        record_probabilities: bool,
        window: int | None,
    ) -> list:
        environment_seed, policy_seeds, label = derive_run_streams(
            seed, plan.num_devices
        )
        num_slots = self._plan_slots(plan)
        first_spec = plan.specs[0]
        num_networks = (
            len(first_spec.scenario.networks)
            if first_spec.scenario is not None
            else len(first_spec.population.bandwidths)
        )
        coupled = self._delay_coupled(plan)
        checkpoint = self.checkpoint
        fingerprint = fingerprint_config = None
        if checkpoint is not None or self.resume_from is not None:
            fingerprint, fingerprint_config = run_fingerprint(
                plan,
                num_slots=num_slots,
                seed_label=label,
                environment_seed=environment_seed,
                record_probabilities=record_probabilities,
                dtype=self.dtype,
                window=window,
                use_kernels=self.use_kernels,
                coupled=coupled,
                reducer=type(reducer).__name__ if reducer is not None else "gather",
            )
        params = RunParams(
            num_slots=num_slots,
            environment_seed=environment_seed,
            seed_label=label,
            record_probabilities=record_probabilities,
            dtype=self.dtype,
            window=window,
            use_kernels=self.use_kernels,
            coupled=coupled,
            num_networks=num_networks,
            total_devices=plan.num_devices,
            heartbeat_seconds=self.heartbeat_seconds,
            num_shards=plan.shards,
            barrier_timeout_s=self.supervision.barrier_timeout_s,
            checkpoint=checkpoint,
            fingerprint=fingerprint,
            fingerprint_config=fingerprint_config,
            fault_plan=self.fault_plan,
        )
        seed_slices = [
            policy_seeds[spec.seed_positions] for spec in plan.specs
        ]
        workers = min(self.workers, plan.shards)

        tele = get_telemetry()
        run_started = time.monotonic()
        if tele is not None:
            tele.event(
                "run_start",
                tag="sharded",
                devices=plan.num_devices,
                slots=num_slots,
                shards=plan.shards,
                workers=workers,
            )

        supervision = self.supervision
        attempts: list[dict] = []
        attempt = 0
        while True:
            if attempt == 0:
                # An explicit resume_from must exist and validate; a plain
                # run starts fresh even if old checkpoints linger.
                resume = resolve_resume(
                    self.resume_from, fingerprint, fingerprint_config,
                    required=True,
                ) if self.resume_from is not None else None
            else:
                resume = resolve_resume(
                    checkpoint.path if checkpoint is not None else None,
                    fingerprint,
                    fingerprint_config,
                    required=False,
                )
            run_params = replace(params, attempt=attempt, resume=resume)
            try:
                if workers <= 1:
                    payloads = self._attempt_serial(
                        plan, run_params, seed_slices, reducer
                    )
                else:
                    payloads = self._attempt_parallel(
                        plan, run_params, seed_slices, reducer, workers
                    )
                if tele is not None:
                    elapsed = time.monotonic() - run_started
                    tele.event(
                        "run_end",
                        tag="sharded",
                        seconds=round(elapsed, 6),
                        device_slots_per_second=round(
                            plan.num_devices * num_slots / max(elapsed, 1e-9),
                            1,
                        ),
                        attempts=attempt + 1,
                    )
                return payloads
            except RECOVERABLE_FAILURES as exc:
                record = {
                    "attempt": attempt,
                    "error": f"{type(exc).__name__}: {exc}",
                }
                if isinstance(exc, WorkerCrashError):
                    record["workers"] = exc.workers
                attempts.append(record)
                if checkpoint is None or attempt >= supervision.max_restarts:
                    reason = (
                        "no checkpointing configured — cannot restart"
                        if checkpoint is None
                        else f"restart budget ({supervision.max_restarts}) exhausted"
                    )
                    if tele is not None:
                        tele.event(
                            "run_failed",
                            tag="sharded",
                            error=record["error"],
                            attempts=attempt + 1,
                        )
                    raise ShardFailureError(
                        f"sharded run failed after {attempt + 1} attempt(s); "
                        f"{reason}",
                        attempts,
                    ) from exc
                backoff = supervision.backoff_s * (2**attempt)
                if tele is not None:
                    tele.event(
                        "worker_restart",
                        attempt=attempt,
                        error=record["error"],
                        backoff_s=round(backoff, 6),
                        workers=record.get("workers"),
                    )
                logger.warning(
                    "sharded run attempt %d failed (%s); restarting from "
                    "last checkpoint in %.2fs",
                    attempt,
                    type(exc).__name__,
                    backoff,
                )
                time.sleep(backoff)
                attempt += 1

    def _attempt_serial(
        self,
        plan: ShardPlan,
        params: RunParams,
        seed_slices: list[np.ndarray],
        reducer,
    ) -> list:
        engines, states, delay_env, start_slot, window_start = _build_group(
            list(plan.specs), seed_slices, params
        )
        return _run_group(
            engines,
            SerialBus(),
            delay_env,
            params,
            reducer,
            log_heartbeat=True,
            worker_index=0,
            states=states,
            start_slot=start_slot,
            window_start=window_start,
        )

    def _attempt_parallel(
        self,
        plan: ShardPlan,
        params: RunParams,
        seed_slices: list[np.ndarray],
        reducer,
        workers: int,
    ) -> list:
        import multiprocessing as mp

        ctx = mp.get_context()
        # Contiguous shard groups per worker, preserving ascending device
        # ranges (the switcher exchange relies on worker-order concatenation
        # being globally sorted).
        groups = shard_boundaries(plan.shards, workers)
        worker_device_offsets = [
            plan.specs[group_lo].lo for group_lo, _ in groups
        ]

        counts_array = ctx.RawArray("q", 2 * workers * params.num_networks)
        switcher_array = switcher_counts_array = None
        if params.coupled:
            switcher_array = ctx.RawArray("q", 2 * params.total_devices * 2)
            switcher_counts_array = ctx.RawArray("q", 2 * workers)
        progress_array = ctx.RawArray("q", workers * 2)
        barrier = ctx.Barrier(workers)
        queue = ctx.Queue()

        processes = []
        for index, (group_lo, group_hi) in enumerate(groups):
            processes.append(
                ctx.Process(
                    target=_shard_worker,
                    args=(
                        index,
                        workers,
                        worker_device_offsets,
                        list(plan.specs[group_lo:group_hi]),
                        seed_slices[group_lo:group_hi],
                        params,
                        reducer,
                        counts_array,
                        switcher_array,
                        switcher_counts_array,
                        progress_array,
                        barrier,
                        queue,
                    ),
                    daemon=True,
                )
            )
        for process in processes:
            process.start()

        progress = np.frombuffer(progress_array, dtype=np.int64).reshape(
            workers, 2
        )
        supervision = self.supervision
        payloads_by_worker: dict[int, list] = {}
        errors_by_worker: dict[int, str] = {}
        failure: WorkerCrashError | None = None
        try:
            import queue as queue_module

            # Workers report once, at the end of the run, which can be
            # arbitrarily far away (a megascale run is tens of minutes) —
            # so poll with a short timeout and keep waiting for as long as
            # every worker is alive.  A worker that dies without reporting
            # (OOM-kill, segfault, injected hard kill) fails the run
            # promptly instead; workers that lose a *peer* fail themselves
            # via the bounded barrier wait.
            while len(payloads_by_worker) < workers and failure is None:
                try:
                    worker_index, status, payload = queue.get(
                        timeout=supervision.poll_interval_s
                    )
                except queue_module.Empty:
                    dead = [
                        index
                        for index, process in enumerate(processes)
                        if process.exitcode not in (None, 0)
                    ]
                    if dead:
                        failure = WorkerCrashError(
                            f"worker process(es) {dead} exited without "
                            "reporting a result",
                            self._worker_diagnostics(
                                processes, progress, errors_by_worker,
                                payloads_by_worker,
                            ),
                        )
                    continue
                if status == "ok":
                    payloads_by_worker[worker_index] = payload
                else:
                    errors_by_worker[worker_index] = payload
                    if failure is None:
                        failure = WorkerCrashError(
                            f"worker {worker_index} failed:\n{payload}",
                            self._worker_diagnostics(
                                processes, progress, errors_by_worker,
                                payloads_by_worker,
                            ),
                        )
        finally:
            if failure is not None:
                # Unblock any worker parked at the barrier, then stop them.
                try:
                    barrier.abort()
                except Exception:
                    pass
                for process in processes:
                    process.join(timeout=5.0)
                for process in processes:
                    if process.is_alive():
                        process.terminate()
            for process in processes:
                process.join(timeout=params.barrier_timeout_s)
        if failure is not None:
            raise failure
        ordered: list = []
        for index in range(workers):
            ordered.extend(payloads_by_worker[index])
        return ordered

    @staticmethod
    def _worker_diagnostics(
        processes, progress: np.ndarray, errors: dict, payloads: dict
    ) -> dict[int, dict]:
        """Per-worker post-mortem: exit code, last barrier seen, traceback."""
        from repro.sim.sharded.bus import PHASE_NAMES

        diagnostics: dict[int, dict] = {}
        snapshot = np.array(progress)
        for index, process in enumerate(processes):
            last_slot = int(snapshot[index, 0])
            info = {
                "exitcode": process.exitcode,
                "reported": index in payloads or index in errors,
                "last_slot": last_slot,
                "last_phase": (
                    PHASE_NAMES[int(snapshot[index, 1])] if last_slot > 0 else None
                ),
            }
            if index in errors:
                info["error"] = errors[index]
            diagnostics[index] = info
        return diagnostics
