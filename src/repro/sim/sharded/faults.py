"""Fault injection and worker supervision for the sharded engine.

Long sharded runs fail in ways unit logic never exercises: a worker is
OOM-killed at slot 900k, a barrier peer stalls, a checkpoint file is
truncated by a full disk.  This module gives those failures first-class
names so the executor can *provoke* them in tests (:class:`FaultPlan`),
*detect* them in production (:class:`SupervisionConfig` driving barrier
timeouts and parent-side exit-code polling), and *report* them precisely
(:class:`ShardFailureError` with per-worker diagnostics) when recovery from
the last checkpoint is impossible or exhausted.

Fault vocabulary
----------------

* :class:`KillWorker` — crash worker ``worker`` when it reaches ``slot``:
  ``hard=True`` exits the process without cleanup (simulating an OOM kill /
  preemption — peers discover it through the barrier timeout, the parent
  through the exit code), ``hard=False`` raises :class:`InjectedFault`
  (simulating an in-Python crash that still reports a traceback).  The
  ``attempt`` field pins the fault to one supervision attempt so a restarted
  run does not re-crash deterministically; ``point`` selects where within
  the slot protocol the crash lands (``"begin"`` before selection,
  ``"mid"`` between the occupancy all-reduce and the switcher exchange,
  ``"end"`` after the slot completes — i.e. after any checkpoint commit).
* :class:`DelayExchange` — sleep ``seconds`` before the slot's occupancy
  exchange, which is how tests provoke a barrier timeout on the peers.
* :class:`CorruptCheckpoint` — flip bytes in one shard file of the
  checkpoint committed at ``slot``, *after* its manifest commit: resume
  must refuse via checksum mismatch rather than silently restore garbage.

All fault objects are frozen dataclasses, picklable by construction, and
cross the worker-process boundary inside ``RunParams``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default barrier timeout: generous enough for a million-device slot on a
#: loaded machine, finite so a crashed worker fails the run instead of
#: hanging it.
DEFAULT_BARRIER_TIMEOUT_S = 600.0


def note_injected_fault(kind: str, worker: int, slot: int, **fields) -> None:
    """Record a fired fault in the telemetry event log (when enabled).

    Emitted *before* the fault takes effect: the per-event flush means a
    hard-killed worker's ``fault_injected`` event survives its ``os._exit``,
    which is what lets the monitor attribute the subsequent restart.  The
    import is local so this module stays dependency-free for pickling.
    """
    from repro.telemetry import get_telemetry

    telemetry = get_telemetry()
    if telemetry is not None:
        telemetry.event(
            "fault_injected", kind=kind, worker=worker, slot=slot, **fields
        )


class InjectedFault(RuntimeError):
    """A :class:`KillWorker` fault fired (soft mode / serial driver)."""


class WorkerCrashError(RuntimeError):
    """A shard worker process died, errored, or lost a barrier peer.

    ``workers`` maps worker index to a diagnostics dict (``exitcode``,
    ``reported``, ``last_slot``, ``last_phase``, optional ``error``
    traceback text).  Raised parent-side; the supervision loop either
    restarts the run from its last checkpoint or wraps the accumulated
    attempts in :class:`ShardFailureError`.
    """

    def __init__(self, message: str, workers: dict | None = None) -> None:
        super().__init__(message)
        self.workers = workers or {}


class BusTimeoutError(RuntimeError):
    """A barrier wait timed out or was broken by a failing peer.

    The message names the slot, the exchange phase, which workers arrived
    and where every other worker was last seen — the diagnostic the old
    silent ``Barrier.wait`` hang never produced.
    """

    def __init__(self, message: str, slot: int = -1, arrived=(), missing=()) -> None:
        super().__init__(message)
        self.slot = slot
        self.arrived = tuple(arrived)
        self.missing = tuple(missing)


class ShardFailureError(RuntimeError):
    """A sharded run failed beyond what supervision could recover.

    ``attempts`` holds one diagnostics dict per failed attempt:
    ``{"attempt": n, "error": str, "workers": {index: {...}}}``.  Raised
    when checkpoint-based restarts are exhausted (or not configured), in
    place of an infinite barrier hang or a bare worker traceback.
    """

    def __init__(self, message: str, attempts: list[dict]) -> None:
        self.attempts = list(attempts)
        lines = [message]
        for record in self.attempts:
            lines.append(
                f"  attempt {record.get('attempt')}: {record.get('error', '?')}"
            )
            for index, info in sorted(record.get("workers", {}).items()):
                details = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(info.items())
                    if key != "error"
                )
                lines.append(f"    worker {index}: {details}")
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class KillWorker:
    """Crash worker ``worker`` at ``slot`` (see the module docstring)."""

    worker: int
    slot: int
    attempt: int = 0
    point: str = "end"
    hard: bool = False

    def __post_init__(self) -> None:
        if self.point not in ("begin", "mid", "end"):
            raise ValueError(
                f"point must be 'begin', 'mid' or 'end', got {self.point!r}"
            )
        if self.slot < 1:
            raise ValueError(f"slot must be >= 1, got {self.slot}")


@dataclass(frozen=True)
class DelayExchange:
    """Sleep ``seconds`` in ``worker`` before ``slot``'s occupancy exchange."""

    worker: int
    slot: int
    seconds: float
    attempt: int | None = None  # None: fires on every attempt


@dataclass(frozen=True)
class CorruptCheckpoint:
    """Garble shard ``shard``'s file of the checkpoint committed at ``slot``."""

    slot: int
    shard: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A picklable schedule of injected faults for one sharded run.

    Used by the fault-injection tests and the ``--suite faults`` benchmark
    mode to *prove* that supervision and checkpoint/resume work, rather
    than assume it.  Production runs simply leave it ``None``.
    """

    faults: tuple = ()

    def kill_at(
        self, worker: int, slot: int, attempt: int, point: str
    ) -> KillWorker | None:
        for fault in self.faults:
            if (
                isinstance(fault, KillWorker)
                and fault.worker == worker
                and fault.slot == slot
                and fault.attempt == attempt
                and fault.point == point
            ):
                return fault
        return None

    def delay_for(self, worker: int, slot: int, attempt: int) -> float:
        total = 0.0
        for fault in self.faults:
            if (
                isinstance(fault, DelayExchange)
                and fault.worker == worker
                and fault.slot == slot
                and fault.attempt in (None, attempt)
            ):
                total += fault.seconds
        return total

    def corruptions_at(self, slot: int) -> list[CorruptCheckpoint]:
        return [
            fault
            for fault in self.faults
            if isinstance(fault, CorruptCheckpoint) and fault.slot == slot
        ]


@dataclass(frozen=True)
class SupervisionConfig:
    """Worker supervision knobs for the sharded executor.

    Attributes
    ----------
    barrier_timeout_s:
        Upper bound on any single :class:`~repro.sim.sharded.bus.SharedMemoryBus`
        barrier wait.  A peer that fails to arrive within it breaks the
        barrier with a :class:`BusTimeoutError` naming the slot, the phase
        and who arrived — the run fails loudly instead of hanging forever.
    max_restarts:
        How many times a crashed/hung run is restarted from its last
        checkpoint before surfacing :class:`ShardFailureError`.  Restarts
        require a :class:`~repro.sim.sharded.checkpoint.CheckpointConfig`;
        without one any worker failure raises immediately.
    backoff_s:
        Base of the exponential restart backoff: attempt ``n`` sleeps
        ``backoff_s * 2**n`` seconds before resuming.
    poll_interval_s:
        Parent-side cadence for polling worker exit codes while waiting
        for results (crashes that bypass Python — OOM kills, segfaults —
        are only visible this way).
    """

    barrier_timeout_s: float = DEFAULT_BARRIER_TIMEOUT_S
    max_restarts: int = 2
    backoff_s: float = 0.5
    poll_interval_s: float = 15.0

    def __post_init__(self) -> None:
        if self.barrier_timeout_s <= 0:
            raise ValueError(
                f"barrier_timeout_s must be > 0, got {self.barrier_timeout_s}"
            )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {self.poll_interval_s}"
            )
