"""Switching-delay models.

Every network switch costs time.  The paper models WiFi association delay with
a Johnson SU distribution and cellular attach delay with a Student's
t-distribution, each fitted to 500 measured delays (Section VI-A).  We do not
have the measured delays, so the distribution families are kept and their
parameters are chosen to produce realistic delays of a few seconds, truncated
to ``[min_delay, max_delay]`` (the slot duration of 15 s upper-bounds any
delay the algorithm can observe).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.game.network import Network, NetworkType


class DelayModel(ABC):
    """Samples the delay (seconds) incurred when switching to a network."""

    #: True when :meth:`sample` never consumes the generator AND is a pure
    #: function of the network (equal calls, equal delays).  The sharded
    #: engine relies on both halves: it skips the per-slot switcher exchange
    #: (no RNG replica can diverge) and resolves a slot's switchers through
    #: a per-network delay table sampled once at run start.  A model whose
    #: delays vary per call — via the generator or any internal state —
    #: must leave this False.
    stream_free: bool = False

    @abstractmethod
    def sample(self, network: Network, rng: np.random.Generator) -> float:
        """Delay in seconds for associating with ``network``."""

    def sample_many(
        self, networks: list[Network], rng: np.random.Generator
    ) -> list[float]:
        """Delays for a batch of switches, in order.

        Must consume the RNG stream exactly as the equivalent sequence of
        :meth:`sample` calls (the vectorized backend batches one slot's
        switching devices through this while the event backend draws them one
        by one).  The default implementation simply loops; subclasses may
        batch draws when their sampler is stream-stable under batching.
        """
        return [self.sample(network, rng) for network in networks]


@dataclass
class NoDelayModel(DelayModel):
    """Zero switching delay (used by unit tests and idealised runs)."""

    stream_free = True

    def sample(self, network: Network, rng: np.random.Generator) -> float:
        return 0.0


@dataclass
class ConstantDelayModel(DelayModel):
    """A fixed delay per switch, optionally different for WiFi and cellular."""

    wifi_delay_s: float = 2.0
    cellular_delay_s: float = 3.0

    stream_free = True

    def __post_init__(self) -> None:
        if self.wifi_delay_s < 0 or self.cellular_delay_s < 0:
            raise ValueError("delays must be non-negative")

    def sample(self, network: Network, rng: np.random.Generator) -> float:
        if network.network_type is NetworkType.CELLULAR:
            return self.cellular_delay_s
        return self.wifi_delay_s


@dataclass
class EmpiricalDelayModel(DelayModel):
    """Johnson SU (WiFi) / Student's t (cellular) switching delays.

    Parameters are chosen so that typical delays fall in the 1–5 second range
    with occasional larger values, consistent with the paper's statement that
    the 15 s slot duration exceeds the maximum delay observed in its real-world
    experiments.  Samples are truncated to ``[min_delay_s, max_delay_s]``.
    """

    wifi_a: float = -1.5
    wifi_b: float = 1.8
    wifi_loc: float = 1.0
    wifi_scale: float = 0.6
    cellular_df: float = 3.0
    cellular_loc: float = 2.5
    cellular_scale: float = 0.8
    min_delay_s: float = 0.2
    max_delay_s: float = 15.0

    def __post_init__(self) -> None:
        if self.min_delay_s < 0:
            raise ValueError("min_delay_s must be >= 0")
        if self.max_delay_s <= self.min_delay_s:
            raise ValueError("max_delay_s must be greater than min_delay_s")
        if self.wifi_b <= 0 or self.wifi_scale <= 0:
            raise ValueError("Johnson SU shape/scale parameters must be positive")
        if self.cellular_df <= 0 or self.cellular_scale <= 0:
            raise ValueError("Student t parameters must be positive")

    def sample(self, network: Network, rng: np.random.Generator) -> float:
        if network.network_type is NetworkType.CELLULAR:
            raw = stats.t.rvs(
                df=self.cellular_df,
                loc=self.cellular_loc,
                scale=self.cellular_scale,
                random_state=rng,
            )
        else:
            raw = stats.johnsonsu.rvs(
                a=self.wifi_a,
                b=self.wifi_b,
                loc=self.wifi_loc,
                scale=self.wifi_scale,
                random_state=rng,
            )
        return float(np.clip(raw, self.min_delay_s, self.max_delay_s))

    def sample_many(
        self, networks: list[Network], rng: np.random.Generator
    ) -> list[float]:
        """Batched draws, bit-identical to sequential :meth:`sample` calls.

        Both scipy samplers are pure transforms of stream-stable generator
        draws — Johnson SU is inverse-CDF over one uniform
        (``sinh((ndtri(u) − a) / b) · scale + loc``) and Student's t wraps
        ``Generator.standard_t`` — so the raw draws are consumed run-by-run
        in switch order (keeping the stream position identical to scalar
        sampling) while the transforms and the truncation vectorize over the
        whole batch.  The delay-model tests pin the bit-equivalence against
        ``scipy.stats.rvs``.
        """
        from scipy.special import ndtri

        count = len(networks)
        cellular = np.asarray(
            [network.network_type is NetworkType.CELLULAR for network in networks],
            dtype=bool,
        )
        raw = np.empty(count, dtype=float)
        start = 0
        while start < count:
            stop = start + 1
            while stop < count and cellular[stop] == cellular[start]:
                stop += 1
            if cellular[start]:
                raw[start:stop] = rng.standard_t(self.cellular_df, size=stop - start)
            else:
                raw[start:stop] = rng.uniform(size=stop - start)
            start = stop
        values = np.empty(count, dtype=float)
        wifi = ~cellular
        if wifi.any():
            values[wifi] = (
                np.sinh((ndtri(raw[wifi]) - self.wifi_a) / self.wifi_b)
                * self.wifi_scale
                + self.wifi_loc
            )
        if cellular.any():
            values[cellular] = raw[cellular] * self.cellular_scale + self.cellular_loc
        clipped = np.clip(values, self.min_delay_s, self.max_delay_s)
        return [float(value) for value in clipped]

    def mean_delay(self, network_type: NetworkType, samples: int = 4000, seed: int = 0) -> float:
        """Monte-Carlo estimate of the mean truncated delay (used by bounds)."""
        rng = np.random.default_rng(seed)
        network = Network(network_id=0, bandwidth_mbps=1.0, network_type=network_type)
        values = [self.sample(network, rng) for _ in range(samples)]
        return float(np.mean(values))
