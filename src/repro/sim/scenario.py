"""Declarative simulation scenarios: the paper's settings 1–3 and a
generative dynamic-scenario layer.

A :class:`Scenario` fully describes an evaluation setting: networks, devices
(with their policies, presence windows and mobility), the coverage map, gain and
delay models, and the horizon.  The factory functions in the middle of this
module build the exact configurations used in Section VI of the paper:

* :func:`setting1_scenario` — 20 devices, 3 networks of 4 / 7 / 22 Mbps.
* :func:`setting2_scenario` — 20 devices, 3 networks of 11 Mbps each.
* :func:`dynamic_join_leave_scenario` — 9 devices join at t=401 and leave after t=800.
* :func:`dynamic_leave_scenario` — 16 devices leave after t=600.
* :func:`mobility_scenario` — 5 networks, 3 service areas, 8 devices moving.
* :func:`mixed_policy_scenario` — robustness settings mixing Smart EXP3 and Greedy.

Beyond those hand-built settings, the generative layer at the bottom samples
whole scenario families from compact models (all from a *construction* seed,
independent of the run seeds, so a generated scenario is a fixed object that
every backend executes bit-identically):

* :class:`PoissonChurn` — Poisson arrivals with exponential lifetimes.
* :class:`TraceChurn` — explicit (join, leave) presence windows, e.g. from a
  measured trace; :func:`per_slot_churn_windows` builds the worst-case tiling
  where *every* slot carries a join or a departure.
* :func:`churn_scenario` — combines a churn model with optional
  random-waypoint mobility (:func:`repro.sim.mobility.random_waypoint_schedule`)
  and network dynamics (:class:`repro.sim.mobility.NetworkDynamics`: outage
  windows and capacity flapping) into one scenario.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.game.device import Device, DeviceGroup
from repro.game.gain import EqualShareModel, GainModel, TimeVaryingCapacityModel
from repro.game.network import Network, NetworkType, make_networks
from repro.sim.delay import DelayModel, EmpiricalDelayModel
from repro.sim.mobility import CoverageMap, NetworkDynamics, random_waypoint_schedule

#: Slot duration used throughout the paper (Section V).
DEFAULT_SLOT_DURATION_S = 15.0
#: Horizon of the static and dynamic simulations: 5 simulated hours.
DEFAULT_HORIZON_SLOTS = 1200


@dataclass
class DeviceSpec:
    """A device together with the policy it runs.

    ``policy`` is a name resolved through :mod:`repro.algorithms.registry`,
    which keeps scenarios declarative and serialisable; ``policy_kwargs`` are
    forwarded to the policy constructor.
    """

    device: Device
    policy: str
    policy_kwargs: dict = field(default_factory=dict)


@dataclass
class Scenario:
    """A complete, reproducible description of one simulation setting."""

    name: str
    networks: list[Network]
    device_specs: list[DeviceSpec]
    coverage: CoverageMap
    gain_model: GainModel = field(default_factory=EqualShareModel)
    delay_model: DelayModel = field(default_factory=EmpiricalDelayModel)
    horizon_slots: int = DEFAULT_HORIZON_SLOTS
    slot_duration_s: float = DEFAULT_SLOT_DURATION_S
    max_rate_mbps: float | None = None
    device_groups: list[DeviceGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.networks:
            raise ValueError("a scenario requires at least one network")
        if not self.device_specs:
            raise ValueError("a scenario requires at least one device")
        if self.horizon_slots < 1:
            raise ValueError("horizon_slots must be >= 1")
        if self.slot_duration_s <= 0:
            raise ValueError("slot_duration_s must be positive")
        network_ids = {n.network_id for n in self.networks}
        if len(network_ids) != len(self.networks):
            raise ValueError("network ids must be unique")
        covered = self.coverage.all_network_ids()
        if not covered <= network_ids:
            raise ValueError(
                f"coverage references unknown networks: {sorted(covered - network_ids)}"
            )
        device_ids = [spec.device.device_id for spec in self.device_specs]
        if len(set(device_ids)) != len(device_ids):
            raise ValueError("device ids must be unique")
        area_names = set(self.coverage.areas)
        for spec in self.device_specs:
            device = spec.device
            if device.join_slot > self.horizon_slots:
                raise ValueError(
                    f"device {device.device_id} joins at slot "
                    f"{device.join_slot}, after the horizon "
                    f"({self.horizon_slots})"
                )
            if (
                device.leave_slot is not None
                and device.leave_slot < device.join_slot
            ):
                # Device.__post_init__ enforces this too; guard here as well
                # so Device subclasses cannot smuggle an inverted window in.
                raise ValueError(
                    f"device {device.device_id} leaves at slot "
                    f"{device.leave_slot}, before joining at "
                    f"{device.join_slot}"
                )
            unknown = {
                area
                for area in device.area_schedule.values()
                if area not in area_names
            }
            if unknown:
                raise ValueError(
                    f"device {device.device_id} area_schedule references "
                    f"unknown service areas: {sorted(unknown)}"
                )
        self.coverage.validate_outages(self.horizon_slots)

    @property
    def network_map(self) -> dict[int, Network]:
        return {n.network_id: n for n in self.networks}

    @property
    def num_devices(self) -> int:
        return len(self.device_specs)

    @property
    def scale_reference_mbps(self) -> float:
        """Bit-rate used to scale gains into [0, 1]."""
        if self.max_rate_mbps is not None:
            return self.max_rate_mbps
        return max(n.bandwidth_mbps for n in self.networks)

    @property
    def total_bandwidth_mbps(self) -> float:
        return sum(n.bandwidth_mbps for n in self.networks)

    def with_policy(self, policy: str, policy_kwargs: Mapping | None = None) -> "Scenario":
        """Copy of this scenario with every device running ``policy``."""
        kwargs = dict(policy_kwargs or {})
        new_specs = [
            DeviceSpec(device=spec.device, policy=policy, policy_kwargs=dict(kwargs))
            for spec in self.device_specs
        ]
        return replace(self, device_specs=new_specs, name=f"{self.name}[{policy}]")

    def with_horizon(self, horizon_slots: int) -> "Scenario":
        """Copy with a new horizon.

        The copy re-runs the full validation, so shrinking the horizon below
        some device's ``join_slot`` (its presence window would fall entirely
        outside the run) is rejected rather than silently dropping the device.
        """
        return replace(self, horizon_slots=horizon_slots)


def _uniform_specs(devices: Sequence[Device], policy: str, policy_kwargs: Mapping | None) -> list[DeviceSpec]:
    kwargs = dict(policy_kwargs or {})
    return [DeviceSpec(device=d, policy=policy, policy_kwargs=dict(kwargs)) for d in devices]


def _static_scenario(
    name: str,
    bandwidths: Sequence[float],
    num_devices: int,
    policy: str,
    policy_kwargs: Mapping | None,
    horizon_slots: int,
) -> Scenario:
    networks = make_networks(list(bandwidths))
    devices = [Device(device_id=i) for i in range(num_devices)]
    coverage = CoverageMap.single_area([n.network_id for n in networks])
    return Scenario(
        name=name,
        networks=networks,
        device_specs=_uniform_specs(devices, policy, policy_kwargs),
        coverage=coverage,
        horizon_slots=horizon_slots,
    )


def setting1_scenario(
    policy: str = "smart_exp3",
    num_devices: int = 20,
    horizon_slots: int = DEFAULT_HORIZON_SLOTS,
    policy_kwargs: Mapping | None = None,
) -> Scenario:
    """Setting 1 of Section VI-A: 3 networks at 4, 7 and 22 Mbps, 20 devices.

    The non-uniform rates yield a unique Nash equilibrium (2 / 4 / 14 devices).
    """
    return _static_scenario(
        "setting1", (4.0, 7.0, 22.0), num_devices, policy, policy_kwargs, horizon_slots
    )


def setting2_scenario(
    policy: str = "smart_exp3",
    num_devices: int = 20,
    horizon_slots: int = DEFAULT_HORIZON_SLOTS,
    policy_kwargs: Mapping | None = None,
) -> Scenario:
    """Setting 2 of Section VI-A: 3 networks of 11 Mbps each, 20 devices."""
    return _static_scenario(
        "setting2", (11.0, 11.0, 11.0), num_devices, policy, policy_kwargs, horizon_slots
    )


def scalability_scenario(
    num_devices: int,
    num_networks: int,
    policy: str = "smart_exp3_no_reset",
    horizon_slots: int = 8640,
    total_bandwidth_mbps: float = 33.0,
    policy_kwargs: Mapping | None = None,
) -> Scenario:
    """Scalability setting of Fig. 6: vary devices and networks, 36 simulated hours.

    The aggregate bandwidth is kept at 33 Mbps (as in settings 1 and 2) and
    split across ``num_networks`` networks with a spread of rates (an arithmetic
    progression) so that equilibria are non-trivial.
    """
    if num_networks < 1:
        raise ValueError("num_networks must be >= 1")
    weights = [float(i + 1) for i in range(num_networks)]
    scale = total_bandwidth_mbps / sum(weights)
    bandwidths = [round(w * scale, 3) for w in weights]
    return _static_scenario(
        f"scalability_d{num_devices}_n{num_networks}",
        bandwidths,
        num_devices,
        policy,
        policy_kwargs,
        horizon_slots,
    )


def dynamic_join_leave_scenario(
    policy: str = "smart_exp3",
    horizon_slots: int = DEFAULT_HORIZON_SLOTS,
    policy_kwargs: Mapping | None = None,
) -> Scenario:
    """Dynamic setting 1 (Fig. 7): 9 of 20 devices join at t=401, leave after t=800."""
    networks = make_networks([4.0, 7.0, 22.0])
    persistent = [Device(device_id=i) for i in range(11)]
    transient = [
        Device(device_id=11 + i, join_slot=401, leave_slot=800) for i in range(9)
    ]
    devices = persistent + transient
    coverage = CoverageMap.single_area([n.network_id for n in networks])
    groups = [
        DeviceGroup(name="persistent", device_ids=tuple(d.device_id for d in persistent)),
        DeviceGroup(name="transient", device_ids=tuple(d.device_id for d in transient)),
    ]
    return Scenario(
        name="dynamic_join_leave",
        networks=networks,
        device_specs=_uniform_specs(devices, policy, policy_kwargs),
        coverage=coverage,
        horizon_slots=horizon_slots,
        device_groups=groups,
    )


def dynamic_leave_scenario(
    policy: str = "smart_exp3",
    horizon_slots: int = DEFAULT_HORIZON_SLOTS,
    policy_kwargs: Mapping | None = None,
) -> Scenario:
    """Dynamic setting 2 (Fig. 8): 16 of 20 devices leave after t=600."""
    networks = make_networks([4.0, 7.0, 22.0])
    stayers = [Device(device_id=i) for i in range(4)]
    leavers = [Device(device_id=4 + i, leave_slot=600) for i in range(16)]
    devices = stayers + leavers
    coverage = CoverageMap.single_area([n.network_id for n in networks])
    groups = [
        DeviceGroup(name="stayers", device_ids=tuple(d.device_id for d in stayers)),
        DeviceGroup(name="leavers", device_ids=tuple(d.device_id for d in leavers)),
    ]
    return Scenario(
        name="dynamic_leave",
        networks=networks,
        device_specs=_uniform_specs(devices, policy, policy_kwargs),
        coverage=coverage,
        horizon_slots=horizon_slots,
        device_groups=groups,
    )


def mobility_scenario(
    policy: str = "smart_exp3",
    horizon_slots: int = DEFAULT_HORIZON_SLOTS,
    policy_kwargs: Mapping | None = None,
) -> Scenario:
    """Dynamic setting 3 (Fig. 9): devices moving across three service areas.

    Networks 1–5 have bandwidths 16, 14, 22, 7 and 4 Mbps.  Network 3 is the
    cellular network visible from every area; the WLANs cover individual areas
    as in Fig. 1.  Devices 1–10 start at the food court, 11–15 at the study
    area and 16–20 at the bus stop; devices 1–8 move to the study area at
    t=401 and to the bus stop at t=801.
    """
    networks = [
        Network(network_id=1, bandwidth_mbps=16.0, network_type=NetworkType.WIFI),
        Network(network_id=2, bandwidth_mbps=14.0, network_type=NetworkType.WIFI),
        Network(network_id=3, bandwidth_mbps=22.0, network_type=NetworkType.CELLULAR),
        Network(network_id=4, bandwidth_mbps=7.0, network_type=NetworkType.WIFI),
        Network(network_id=5, bandwidth_mbps=4.0, network_type=NetworkType.WIFI),
    ]
    coverage = CoverageMap.from_area_networks(
        {
            "food_court": (2, 3, 4),
            "study_area": (1, 3),
            "bus_stop": (3, 4, 5),
        },
        default_area="food_court",
    )
    devices: list[Device] = []
    # Devices 1-8 (ids 1..8): food court -> study area (t=401) -> bus stop (t=801).
    for device_id in range(1, 9):
        devices.append(
            Device(
                device_id=device_id,
                area_schedule={1: "food_court", 401: "study_area", 801: "bus_stop"},
            )
        )
    # Devices 9-10: stay at the food court.
    for device_id in range(9, 11):
        devices.append(Device(device_id=device_id, area_schedule={1: "food_court"}))
    # Devices 11-15: study area.
    for device_id in range(11, 16):
        devices.append(Device(device_id=device_id, area_schedule={1: "study_area"}))
    # Devices 16-20: bus stop.
    for device_id in range(16, 21):
        devices.append(Device(device_id=device_id, area_schedule={1: "bus_stop"}))
    groups = [
        DeviceGroup(name="moving (1-8)", device_ids=tuple(range(1, 9))),
        DeviceGroup(name="food court (9-10)", device_ids=tuple(range(9, 11))),
        DeviceGroup(name="study area (11-15)", device_ids=tuple(range(11, 16))),
        DeviceGroup(name="bus stop (16-20)", device_ids=tuple(range(16, 21))),
    ]
    return Scenario(
        name="mobility",
        networks=networks,
        device_specs=_uniform_specs(devices, policy, policy_kwargs),
        coverage=coverage,
        horizon_slots=horizon_slots,
        device_groups=groups,
    )


def mixed_policy_scenario(
    policy_counts: Mapping[str, int],
    bandwidths: Sequence[float] = (4.0, 7.0, 22.0),
    horizon_slots: int = DEFAULT_HORIZON_SLOTS,
    name: str | None = None,
    policy_kwargs: Mapping[str, Mapping] | None = None,
) -> Scenario:
    """A static scenario where different devices run different policies.

    Used for the robustness experiments of Fig. 11 (e.g. ``{"smart_exp3": 19,
    "greedy": 1}``) and the controlled mixed experiment of Fig. 15.
    """
    if not policy_counts:
        raise ValueError("policy_counts must not be empty")
    kwargs_by_policy = {k: dict(v) for k, v in (policy_kwargs or {}).items()}
    networks = make_networks(list(bandwidths))
    coverage = CoverageMap.single_area([n.network_id for n in networks])
    specs: list[DeviceSpec] = []
    groups: list[DeviceGroup] = []
    device_id = 0
    for policy, count in policy_counts.items():
        if count < 0:
            raise ValueError(f"count for policy {policy!r} must be >= 0")
        ids = []
        for _ in range(count):
            specs.append(
                DeviceSpec(
                    device=Device(device_id=device_id),
                    policy=policy,
                    policy_kwargs=dict(kwargs_by_policy.get(policy, {})),
                )
            )
            ids.append(device_id)
            device_id += 1
        if ids:
            groups.append(DeviceGroup(name=policy, device_ids=tuple(ids)))
    scenario_name = name or "mixed_" + "_".join(
        f"{policy}{count}" for policy, count in policy_counts.items()
    )
    return Scenario(
        name=scenario_name,
        networks=networks,
        device_specs=specs,
        coverage=coverage,
        horizon_slots=horizon_slots,
        device_groups=groups,
    )


# --------------------------------------------------------------------------
# Generative dynamic-scenario layer


class ChurnModel(ABC):
    """Samples per-device presence windows (the churn side of a scenario)."""

    @abstractmethod
    def presence_windows(
        self, num_devices: int, horizon_slots: int, rng: np.random.Generator
    ) -> list[tuple[int, int | None]]:
        """One ``(join_slot, leave_slot)`` pair per device.

        ``leave_slot`` of ``None`` means the device stays until the end of
        the horizon.  Every returned ``join_slot`` must lie within the
        horizon (:class:`Scenario` validation enforces it).
        """


@dataclass(frozen=True)
class PoissonChurn(ChurnModel):
    """Poisson arrival process with exponential lifetimes.

    ``initial_fraction`` of the population is present from slot 1; the rest
    arrive with exponential inter-arrival times of mean
    ``1 / arrival_rate_per_slot``.  Every device stays for an exponential
    lifetime of mean ``mean_lifetime_slots`` (floored at one slot).  If the
    arrival process outruns the horizon before the requested population has
    arrived, the remaining devices are placed uniformly at random within the
    horizon so the population size always matches the request.
    """

    arrival_rate_per_slot: float = 0.2
    mean_lifetime_slots: float = 200.0
    initial_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.arrival_rate_per_slot <= 0:
            raise ValueError("arrival_rate_per_slot must be positive")
        if self.mean_lifetime_slots <= 0:
            raise ValueError("mean_lifetime_slots must be positive")
        if not 0.0 <= self.initial_fraction <= 1.0:
            raise ValueError("initial_fraction must be in [0, 1]")

    def presence_windows(
        self, num_devices: int, horizon_slots: int, rng: np.random.Generator
    ) -> list[tuple[int, int | None]]:
        initial = int(round(self.initial_fraction * num_devices))
        windows: list[tuple[int, int | None]] = []
        arrival = 1.0
        for index in range(num_devices):
            if index < initial:
                join = 1
            else:
                arrival += float(rng.exponential(1.0 / self.arrival_rate_per_slot))
                join = int(np.ceil(arrival))
                if join > horizon_slots:
                    join = int(rng.integers(1, horizon_slots + 1))
            lifetime = max(
                1, int(round(float(rng.exponential(self.mean_lifetime_slots))))
            )
            leave = join + lifetime - 1
            windows.append((join, None if leave >= horizon_slots else leave))
        return windows


@dataclass(frozen=True)
class TraceChurn(ChurnModel):
    """Trace-driven churn: explicit presence windows, cycled over the devices."""

    windows: tuple[tuple[int, int | None], ...]

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("TraceChurn requires at least one window")
        for join, leave in self.windows:
            if join < 1:
                raise ValueError(f"join slots are 1-based, got {join}")
            if leave is not None and leave < join:
                raise ValueError(
                    f"window ({join}, {leave}) ends before it starts"
                )

    def presence_windows(
        self, num_devices: int, horizon_slots: int, rng: np.random.Generator
    ) -> list[tuple[int, int | None]]:
        return [
            self.windows[index % len(self.windows)]
            for index in range(num_devices)
        ]


def per_slot_churn_windows(
    num_devices: int,
) -> tuple[list[tuple[int, int | None]], int]:
    """Presence windows where every slot carries a join or a departure.

    Half the population is persistent; the transient half joins one device
    per slot and later departs one device per slot, tiling the whole natural
    horizon (returned alongside the windows) with exactly one topology event
    per slot after the first.  This is the worst-case workload for any
    executor that special-cases topology changes.
    """
    if num_devices < 2:
        raise ValueError("per-slot churn needs at least 2 devices")
    transient = num_devices // 2
    horizon = 2 * transient + 1
    windows: list[tuple[int, int | None]] = [
        (1, None) for _ in range(num_devices - transient)
    ]
    windows.extend((2 + i, transient + 1 + i) for i in range(transient))
    return windows, horizon


def churn_scenario(
    num_devices: int = 100,
    policy: str = "smart_exp3",
    bandwidths: Sequence[float] = (4.0, 7.0, 22.0),
    horizon_slots: int = DEFAULT_HORIZON_SLOTS,
    churn: ChurnModel | None = None,
    areas: Mapping[str, Sequence[int]] | None = None,
    mobility_fraction: float = 0.0,
    mean_dwell_slots: float = 80.0,
    dynamics: NetworkDynamics | None = None,
    seed: int = 0,
    policy_kwargs: Mapping | None = None,
    name: str | None = None,
) -> Scenario:
    """Generate a dynamic scenario from churn/mobility/network-dynamics models.

    All sampling (arrivals, lifetimes, waypoint walks, outage and capacity
    flapping) draws from one construction generator seeded with ``seed`` —
    independent of the run seeds, so the generated scenario is a fixed,
    picklable object and repeated calls with equal arguments are identical.

    Parameters
    ----------
    churn:
        A :class:`ChurnModel`; ``None`` keeps every device present for the
        whole horizon.
    areas:
        Optional area-name -> network-ids coverage (the first key is the
        default area); ``None`` uses a single area covering every network.
    mobility_fraction:
        Fraction of devices performing a random-waypoint walk over the areas
        (requires at least two areas to have any effect).
    dynamics:
        Optional :class:`repro.sim.mobility.NetworkDynamics`; its compiled
        outage windows are installed on the coverage map and its capacity
        schedule (if any) wraps the gain model in a
        :class:`repro.game.gain.TimeVaryingCapacityModel`.
    """
    if not 0.0 <= mobility_fraction <= 1.0:
        raise ValueError("mobility_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    networks = make_networks(list(bandwidths))
    if areas is None:
        coverage = CoverageMap.single_area([n.network_id for n in networks])
    else:
        coverage = CoverageMap.from_area_networks(
            areas, default_area=next(iter(areas))
        )
    gain_model: GainModel = EqualShareModel()
    if dynamics is not None:
        outages = dynamics.compile_outages(horizon_slots, rng)
        if outages:
            coverage = coverage.with_outages(outages)
        if dynamics.has_capacity_flapping:
            gain_model = TimeVaryingCapacityModel(
                gain_model,
                dynamics.compile_capacity_schedule(horizon_slots, rng),
            )
    if churn is None:
        windows: list[tuple[int, int | None]] = [
            (1, None) for _ in range(num_devices)
        ]
    else:
        windows = churn.presence_windows(num_devices, horizon_slots, rng)
    num_mobile = (
        int(round(mobility_fraction * num_devices))
        if len(coverage.areas) > 1
        else 0
    )
    area_names = tuple(coverage.areas)
    devices: list[Device] = []
    for device_id, (join, leave) in enumerate(windows):
        schedule: dict[int, str] = {}
        if device_id < num_mobile:
            schedule = random_waypoint_schedule(
                area_names, horizon_slots, rng, mean_dwell_slots
            )
        devices.append(
            Device(
                device_id=device_id,
                join_slot=join,
                leave_slot=leave,
                area_schedule=schedule,
            )
        )
    persistent = tuple(
        d.device_id
        for d in devices
        if d.join_slot == 1 and d.leave_slot is None
    )
    transient = tuple(
        d.device_id
        for d in devices
        if d.join_slot != 1 or d.leave_slot is not None
    )
    groups = []
    if persistent:
        groups.append(DeviceGroup(name="persistent", device_ids=persistent))
    if transient:
        groups.append(DeviceGroup(name="transient", device_ids=transient))
    return Scenario(
        name=name or f"churn_d{num_devices}_s{seed}",
        networks=networks,
        device_specs=_uniform_specs(devices, policy, policy_kwargs),
        coverage=coverage,
        gain_model=gain_model,
        horizon_slots=horizon_slots,
        device_groups=groups,
    )


def per_slot_churn_scenario(
    num_devices: int = 100,
    policy: str = "exp3",
    bandwidths: Sequence[float] = (4.0, 7.0, 22.0),
    policy_kwargs: Mapping | None = None,
) -> Scenario:
    """The churn stress setting: a join or departure on every slot.

    The natural horizon follows from the population (see
    :func:`per_slot_churn_windows`); this is the scenario behind the
    ``--suite churn`` benchmark floor.
    """
    windows, horizon = per_slot_churn_windows(num_devices)
    return churn_scenario(
        num_devices=num_devices,
        policy=policy,
        bandwidths=bandwidths,
        horizon_slots=horizon,
        churn=TraceChurn(tuple(windows)),
        policy_kwargs=policy_kwargs,
        name=f"per_slot_churn_d{num_devices}",
    )
