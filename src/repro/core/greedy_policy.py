"""Initial exploration and the greedy selection gate of Smart EXP3.

Smart EXP3 explores every available network once (in random order) and then,
while the probability distribution is still close to uniform — or again after a
reset — flips an unbiased coin and with probability ½ picks the network with
the highest average observed gain instead of sampling from the distribution
(Section III, "Greedy choices"; Section V for the precise conditions).
"""

from __future__ import annotations

from typing import Iterable, Mapping


class GainTracker:
    """Average observed gain per network, fed once per time slot."""

    def __init__(self) -> None:
        self._gain_sum: dict[int, float] = {}
        self._gain_count: dict[int, int] = {}

    def record(self, network_id: int, gain: float) -> None:
        if gain < 0:
            raise ValueError(f"gain must be non-negative, got {gain}")
        self._gain_sum[network_id] = self._gain_sum.get(network_id, 0.0) + gain
        self._gain_count[network_id] = self._gain_count.get(network_id, 0) + 1

    def observations(self, network_id: int) -> int:
        return self._gain_count.get(network_id, 0)

    def average(self, network_id: int) -> float:
        count = self._gain_count.get(network_id, 0)
        if count == 0:
            return 0.0
        return self._gain_sum[network_id] / count

    def best_network(self, candidates: Iterable[int]) -> int | None:
        """Network with the highest average gain among ``candidates``.

        Returns ``None`` when no candidate has been observed yet.  Ties are
        broken by network id for determinism.
        """
        best_id: int | None = None
        best_gain = -1.0
        for network_id in sorted(candidates):
            if self.observations(network_id) == 0:
                continue
            gain = self.average(network_id)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_id = network_id
        return best_id

    def forget_network(self, network_id: int) -> None:
        self._gain_sum.pop(network_id, None)
        self._gain_count.pop(network_id, None)

    def reset(self) -> None:
        """Clear all averages (part of the minimal reset)."""
        self._gain_sum.clear()
        self._gain_count.clear()

    # ------------------------------------------------------- batch-kernel I/O
    def export_arrays(
        self, network_order: tuple[int, ...]
    ) -> tuple[list[float], list[int]]:
        """Gain sums and observation counts as rows aligned with the order."""
        sums = [self._gain_sum.get(network_id, 0.0) for network_id in network_order]
        counts = [self._gain_count.get(network_id, 0) for network_id in network_order]
        return sums, counts

    def load_arrays(self, network_order: tuple[int, ...], sums, counts) -> None:
        """Replace the statistics from dense rows (inverse of export)."""
        self._gain_sum = {}
        self._gain_count = {}
        for network_id, total, count in zip(network_order, sums, counts):
            if count:
                self._gain_sum[network_id] = float(total)
                self._gain_count[network_id] = int(count)


class GreedyGate:
    """Decides whether the greedy selection may be considered for a block.

    The gate opens when either of two conditions holds (Section V):

    * (a) ``max(p) − min(p) ≤ 1/(k−1)`` — the distribution is still close to
      uniform, so the device has not committed to a network yet; or
    * (b) ``l_{i+} < y`` where ``l_{i+}`` is the block length of the most
      probable network and ``y`` is its value at the moment condition (a) first
      became false.  This re-opens the gate after a reset (block lengths shrink
      back below the latched value).
    """

    def __init__(self) -> None:
        self._latched_length: int | None = None

    @property
    def latched_length(self) -> int | None:
        """The latched ``y`` value (``None`` until condition (a) first fails)."""
        return self._latched_length

    def allows_greedy(
        self,
        probabilities: Mapping[int, float],
        top_network_block_length: int,
    ) -> bool:
        """Whether the greedy coin may be flipped for the next block."""
        if not probabilities:
            return False
        k = len(probabilities)
        if k <= 1:
            return False
        values = list(probabilities.values())
        spread = max(values) - min(values)
        if spread <= 1.0 / (k - 1) + 1e-12:
            return True
        if self._latched_length is None:
            self._latched_length = top_network_block_length
        return top_network_block_length < self._latched_length

    def load_latched(self, latched_length: int | None) -> None:
        """Restore the latched ``y`` value (batch-kernel state scatter)."""
        self._latched_length = latched_length
