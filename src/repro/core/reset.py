"""Minimal reset mechanism of Smart EXP3.

Smart EXP3 resets "every so often" and when it detects a significant sustained
drop in the quality of the network it keeps selecting (Section III, "Minimal
reset"; Section V for thresholds).  A reset clears block lengths and the data
used by the greedy selection and forces a fresh exploration of the available
networks — but keeps the weights, so learning is not thrown away.

Two triggers are implemented:

* **Periodic** — the most probable network has probability ≥ 0.75 *and* its
  block length has grown to ≥ 40 slots: the device has locked in, so a reset
  lets it discover resources other devices may have freed.
* **Quality drop** — the device has been connected to its most-used network for
  more than 4 slots and observes a drop of at least 15 % (sustained over more
  than one slot) relative to what that network delivered earlier.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np


class DropDetector:
    """Detects a sustained drop in the quality of the current connection.

    The detector compares the average gain of the most recent ``window_slots``
    slots of the uninterrupted connection against the average gain of the
    earlier part of the same connection (the "reference").  A drop is reported
    only when

    * the device has a meaningful reference — at least ``min_connection_slots``
      slots connected before the recent window ("connected since more than 4
      time slots" in the paper), and
    * the recent average is at least ``drop_fraction`` below the reference.

    Averaging over a multi-slot window makes the detector insensitive to
    single-slot dips (another device exploring the network for one slot) while
    a genuine, persistent quality drop — a trace bandwidth collapse, a crowd of
    devices joining and staying — is caught within ``window_slots`` slots.
    """

    def __init__(
        self,
        drop_fraction: float = 0.15,
        min_connection_slots: int = 4,
        window_slots: int = 5,
        reference_window_slots: int = 16,
    ) -> None:
        if not 0.0 < drop_fraction < 1.0:
            raise ValueError("drop_fraction must be in (0, 1)")
        if min_connection_slots < 1:
            raise ValueError("min_connection_slots must be >= 1")
        if window_slots < 1:
            raise ValueError("window_slots must be >= 1")
        if reference_window_slots < min_connection_slots:
            raise ValueError(
                "reference_window_slots must be at least min_connection_slots"
            )
        self.drop_fraction = drop_fraction
        self.min_connection_slots = min_connection_slots
        self.window_slots = window_slots
        self.reference_window_slots = reference_window_slots
        self._network_id: int | None = None
        self._gains: list[float] = []

    @property
    def connection_length(self) -> int:
        """Number of consecutive slots spent on the current network."""
        return len(self._gains)

    def observe(self, network_id: int, gain: float) -> bool:
        """Record one slot of the current connection; returns True on a drop.

        Changing network restarts the detector entirely: the drop must be
        observed on a single uninterrupted connection.
        """
        gain = float(gain)
        if network_id != self._network_id:
            self._network_id = network_id
            self._gains = []
        self._gains.append(gain)
        max_history = self.reference_window_slots + self.window_slots
        if len(self._gains) > max_history:
            self._gains = self._gains[-max_history:]
        if len(self._gains) <= self.min_connection_slots + self.window_slots:
            return False
        recent = self._gains[-self.window_slots:]
        reference = self._gains[: -self.window_slots]
        reference_level = float(np.median(reference))
        if reference_level <= 0:
            return False
        # Medians make the detector robust to isolated one-slot dips (noise or a
        # single exploring device), which the paper explicitly ignores.
        recent_level = float(np.median(recent))
        return recent_level <= (1.0 - self.drop_fraction) * reference_level

    def clear(self) -> None:
        """Forget all state (called after a reset)."""
        self._network_id = None
        self._gains = []

    # ------------------------------------------------------- batch-kernel I/O
    def export_state(self) -> tuple[int | None, list[float]]:
        """The tracked connection and its gain history, oldest first."""
        return self._network_id, list(self._gains)

    def load_state(self, network_id: int | None, gains) -> None:
        """Restore a connection history (inverse of export)."""
        self._network_id = network_id
        self._gains = [float(gain) for gain in gains]


class ResetPolicy:
    """Combines the periodic and drop-based reset triggers."""

    def __init__(
        self,
        probability_threshold: float = 0.75,
        block_length_threshold: int = 40,
        drop_fraction: float = 0.15,
        drop_min_connection_slots: int = 4,
        drop_window_slots: int = 2,
    ) -> None:
        if not 0.0 < probability_threshold <= 1.0:
            raise ValueError("probability_threshold must be in (0, 1]")
        if block_length_threshold < 1:
            raise ValueError("block_length_threshold must be >= 1")
        self.probability_threshold = probability_threshold
        self.block_length_threshold = block_length_threshold
        self.drop_detector = DropDetector(
            drop_fraction=drop_fraction,
            min_connection_slots=drop_min_connection_slots,
            window_slots=drop_window_slots,
        )

    def should_periodic_reset(
        self,
        probabilities: Mapping[int, float],
        top_network_block_length: int,
    ) -> bool:
        """Periodic trigger: the device has locked in to a single network."""
        if not probabilities:
            return False
        top_probability = max(probabilities.values())
        return (
            top_probability >= self.probability_threshold
            and top_network_block_length >= self.block_length_threshold
        )

    def observe_slot(self, network_id: int, gain: float, is_most_used: bool) -> bool:
        """Drop trigger: feed the slot observation; returns True to reset.

        Only drops on the most-used network (``i_max`` in the paper) trigger a
        reset — a dip on a network the device is merely exploring is not a
        reason to forget everything.
        """
        dropped = self.drop_detector.observe(network_id, gain)
        return dropped and is_most_used

    def after_reset(self) -> None:
        """Clear detector state after the policy has performed a reset."""
        self.drop_detector.clear()
