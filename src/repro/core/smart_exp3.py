"""Smart EXP3 (Algorithm 1 of the paper) and its Table-III variants.

:class:`SmartEXP3Policy` composes the EXP3 weight/probability updates with the
four mechanisms of Section III:

1. **Adaptive blocking** — a network is kept for ``ceil((1+β)^x)`` slots.
2. **Initial exploration + greedy choices** — every network is tried once in
   random order; afterwards, while the distribution is still near uniform (or
   again after a reset), an unbiased coin decides between a greedy pick of the
   best average-gain network and a random draw from the distribution.
3. **Switch-back** — if the first slot of a new block is worse than the
   previous block, the new block is cut to one slot and the device returns to
   its previous network.
4. **Minimal reset** — periodically, and on a sustained ≥15 % quality drop,
   block lengths and greedy statistics are cleared and exploration is forced,
   while the learned weights are kept.

Disabling mechanisms via :class:`repro.core.config.SmartEXP3Config` yields the
Block EXP3, Hybrid Block EXP3 and Smart EXP3 w/o Reset variants evaluated in
Section VI.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Observation, Policy, PolicyContext
from repro.core.blocking import Block, BlockScheduler, SelectionType
from repro.core.config import SmartEXP3Config
from repro.core.greedy_policy import GainTracker, GreedyGate
from repro.core.reset import ResetPolicy
from repro.core.switchback import BlockHistory, SwitchBackRule


class SmartEXP3Policy(Policy):
    """The Smart EXP3 network-selection policy.

    Parameters
    ----------
    context:
        Standard policy context (available networks and the device's RNG).
    config:
        Algorithm parameters and feature flags; defaults to the full algorithm
        with the paper's Section-V constants.
    """

    def __init__(
        self, context: PolicyContext, config: SmartEXP3Config | None = None
    ) -> None:
        super().__init__(context)
        self.config = config if config is not None else SmartEXP3Config.full()
        self._weights: dict[int, float] = {i: 1.0 for i in self.available_networks}
        self._scheduler = BlockScheduler(beta=self.config.beta)
        self._gain_tracker = GainTracker()
        self._greedy_gate = GreedyGate()
        self._switch_rule = SwitchBackRule(window=self.config.switchback_window)
        self._reset_policy = ResetPolicy(
            probability_threshold=self.config.reset_probability_threshold,
            block_length_threshold=self.config.reset_block_length_threshold,
            drop_fraction=self.config.drop_fraction,
            drop_min_connection_slots=self.config.drop_min_connection_slots,
            drop_window_slots=self.config.drop_window_slots,
        )
        self._block_index = 0
        self._current_block: Block | None = None
        self._previous_history: BlockHistory | None = None
        self._previous_was_switch_back = False
        self._switch_back_pending = False
        self._switch_back_target: int | None = None
        self._drop_reset_pending = False
        self._explore_set: set[int] = (
            set(self.available_networks)
            if self.config.enable_initial_exploration
            else set()
        )
        self._slot_usage: dict[int, int] = {i: 0 for i in self.available_networks}
        self._current_probabilities: dict[int, float] = {
            i: 1.0 / self.num_networks for i in self.available_networks
        }

    # ----------------------------------------------------------------- gamma
    def _gamma(self, block_index: int | None = None) -> float:
        if self.config.fixed_gamma is not None:
            return self.config.fixed_gamma
        b = block_index if block_index is not None else max(self._block_index, 1)
        return float(min(1.0, max(b, 1) ** (-self.config.gamma_exponent)))

    # ----------------------------------------------------------- distribution
    def _compute_probabilities(self, gamma: float) -> dict[int, float]:
        weights = np.asarray(
            [self._weights[i] for i in self.available_networks], dtype=float
        )
        total = float(np.sum(weights))
        k = len(weights)
        probs = (1.0 - gamma) * weights / total + gamma / k
        return {
            network_id: float(p)
            for network_id, p in zip(self.available_networks, probs)
        }

    def _normalise_weights(self) -> None:
        max_weight = max(self._weights.values())
        if max_weight > 1e100 or max_weight < 1e-100:
            for network_id in self._weights:
                self._weights[network_id] /= max_weight

    def _sample(self, probabilities: dict[int, float]) -> int:
        ids = list(probabilities)
        values = np.asarray([probabilities[i] for i in ids], dtype=float)
        values = values / values.sum()
        return int(self.rng.choice(ids, p=values))

    def _top_network(self, probabilities: dict[int, float]) -> int:
        return max(sorted(probabilities), key=lambda i: probabilities[i])

    def _most_used_network(self) -> int | None:
        """The network ``i_max`` selected for the highest number of time slots.

        Returns ``None`` until one network clearly dominates the device's usage
        (more than half of its connected slots): the drop-based reset is only
        meaningful once the device has a long-run preferred network, otherwise
        ordinary congestion churn during convergence would be mistaken for an
        environmental change.
        """
        used = {i: c for i, c in self._slot_usage.items() if c > 0}
        if not used:
            return None
        total = sum(used.values())
        top = max(sorted(used), key=lambda i: used[i])
        if used[top] <= 0.5 * total:
            return None
        return top

    # ------------------------------------------------------------ block logic
    def _start_new_block(self) -> None:
        self._block_index += 1
        gamma = self._gamma(self._block_index)
        probabilities = self._compute_probabilities(gamma)
        self._current_probabilities = probabilities

        network_id: int
        probability: float
        selection_type: SelectionType

        if (
            self.config.enable_switchback
            and self._switch_back_pending
            and self._switch_back_target in self.available_networks
        ):
            network_id = int(self._switch_back_target)  # type: ignore[arg-type]
            probability = 1.0
            selection_type = SelectionType.SWITCH_BACK
            self._switch_back_pending = False
            self._switch_back_target = None
        elif self.config.enable_initial_exploration and self._explore_set:
            candidates = sorted(self._explore_set & set(self.available_networks))
            if candidates:
                probability = 1.0 / len(candidates)
                network_id = int(self.rng.choice(candidates))
                self._explore_set.discard(network_id)
                selection_type = SelectionType.EXPLORATION
            else:
                self._explore_set.clear()
                network_id, probability, selection_type = self._choose_learned(
                    probabilities
                )
        else:
            network_id, probability, selection_type = self._choose_learned(
                probabilities
            )

        length = self._scheduler.record_selection(network_id)
        # A one-network strategy set makes (1-γ)·w/w + γ/1 land one ulp above
        # 1; clamp so the block stays a valid probability (the kernel applies
        # the identical clamp, keeping the paths bit-equal).
        self._current_block = Block(
            index=self._block_index,
            network_id=network_id,
            length=length,
            selection_type=selection_type,
            probability=min(probability, 1.0),
        )

    def _choose_learned(
        self, probabilities: dict[int, float]
    ) -> tuple[int, float, SelectionType]:
        """Choose via the greedy coin or the probability distribution."""
        top = self._top_network(probabilities)
        greedy_considered = (
            self.config.enable_greedy
            and self._greedy_gate.allows_greedy(
                probabilities, self._scheduler.block_length(top)
            )
        )
        if greedy_considered and self.rng.random() < self.config.greedy_probability:
            best = self._gain_tracker.best_network(self.available_networks)
            if best is not None:
                return best, self.config.greedy_probability, SelectionType.GREEDY
        network_id = self._sample(probabilities)
        if greedy_considered:
            probability = probabilities[network_id] * (1.0 - self.config.greedy_probability)
            return network_id, probability, SelectionType.RANDOM_AFTER_COIN
        return network_id, probabilities[network_id], SelectionType.RANDOM

    def _finalize_block(self) -> None:
        block = self._current_block
        assert block is not None
        gamma = self._gamma(block.index)
        k = self.num_networks
        if block.network_id in self._weights:
            estimated_gain = block.total_gain / max(block.probability, 1e-12)
            self._weights[block.network_id] *= float(
                np.exp(gamma * estimated_gain / k)
            )
            self._normalise_weights()
        history = BlockHistory(
            network_id=block.network_id,
            gains=list(block.slot_gains),
            window=self.config.switchback_window,
        )
        self._previous_history = history
        self._previous_was_switch_back = block.selection_type is SelectionType.SWITCH_BACK

        if self.config.enable_reset:
            probabilities = self._compute_probabilities(self._gamma())
            top = self._top_network(probabilities)
            periodic = self._reset_policy.should_periodic_reset(
                probabilities, self._scheduler.block_length(top)
            )
            if periodic or self._drop_reset_pending:
                self._do_reset()

    def _do_reset(self) -> None:
        """Minimal reset: forget block lengths and greedy data, keep the weights."""
        self._scheduler.reset()
        self._gain_tracker.reset()
        self._reset_policy.after_reset()
        if self.config.enable_initial_exploration:
            self._explore_set = set(self.available_networks)
        self._switch_back_pending = False
        self._switch_back_target = None
        self._previous_history = None
        self._previous_was_switch_back = False
        self._drop_reset_pending = False
        self.reset_count += 1

    # -------------------------------------------------------------- interface
    def begin_slot(self, slot: int) -> int:
        if self._current_block is None or self._current_block.is_complete:
            self._start_new_block()
        assert self._current_block is not None
        return self._check_network(self._current_block.network_id)

    def end_slot(self, slot: int, observation: Observation) -> None:
        block = self._current_block
        if block is None:
            raise RuntimeError("end_slot called before begin_slot")
        if observation.network_id != block.network_id:
            raise ValueError(
                "observation does not match the network chosen in begin_slot"
            )
        gain = float(np.clip(observation.gain, 0.0, 1.0))
        block.record_gain(gain)
        self._gain_tracker.record(block.network_id, gain)
        self._slot_usage[block.network_id] = (
            self._slot_usage.get(block.network_id, 0) + 1
        )

        first_slot_of_block = block.slots_elapsed == 1
        if (
            self.config.enable_switchback
            and first_slot_of_block
            # During (initial or post-reset) exploration every network must be
            # visited once, so exploration blocks are never abandoned early.
            and block.selection_type is not SelectionType.EXPLORATION
        ):
            should_switch_back = self._switch_rule.should_switch_back(
                first_slot_gain=gain,
                current_network=block.network_id,
                previous_block=self._previous_history,
                current_block_is_switch_back=(
                    block.selection_type is SelectionType.SWITCH_BACK
                ),
                previous_block_was_switch_back=self._previous_was_switch_back,
            )
            if should_switch_back:
                assert self._previous_history is not None
                block.truncate()
                self._switch_back_pending = True
                self._switch_back_target = self._previous_history.network_id

        if self.config.enable_reset:
            most_used = self._most_used_network()
            drop = self._reset_policy.observe_slot(
                block.network_id, gain, is_most_used=(block.network_id == most_used)
            )
            if drop:
                self._drop_reset_pending = True
                block.truncate()

        if block.is_complete:
            self._finalize_block()

    # -------------------------------------------------- dynamic network sets
    def on_network_set_changed(
        self, old_set: frozenset[int], new_set: frozenset[int]
    ) -> None:
        added = new_set - old_set
        removed = old_set - new_set
        needs_reset = False

        if added:
            existing = [self._weights[i] for i in old_set & new_set if i in self._weights]
            max_weight = max(existing) if existing else 1.0
            for network_id in added:
                self._weights[network_id] = max_weight
                self._slot_usage.setdefault(network_id, 0)
            needs_reset = True

        for network_id in removed:
            probability = self._current_probabilities.get(network_id, 0.0)
            if probability >= self.config.removed_network_probability_threshold:
                needs_reset = True
            self._weights.pop(network_id, None)
            self._slot_usage.pop(network_id, None)
            self._scheduler.forget_network(network_id)
            self._gain_tracker.forget_network(network_id)
            self._explore_set.discard(network_id)
            if self._switch_back_target == network_id:
                self._switch_back_pending = False
                self._switch_back_target = None
            if (
                self._previous_history is not None
                and self._previous_history.network_id == network_id
            ):
                self._previous_history = None

        if (
            self._current_block is not None
            and self._current_block.network_id not in new_set
        ):
            # The connected network disappeared: abandon the block (its gain is
            # not credited to any weight) and re-select next slot.
            self._current_block = None

        if needs_reset and self.config.enable_reset:
            self._do_reset()
        elif needs_reset:
            # Variants without the reset mechanism still need to explore newly
            # discovered networks to remain well defined.
            if self.config.enable_initial_exploration and added:
                self._explore_set |= set(added)

    # -------------------------------------------------------------- reporting
    @property
    def probabilities(self) -> dict[int, float]:
        probabilities = self._compute_probabilities(self._gamma())
        return probabilities

    @property
    def weights(self) -> dict[int, float]:
        """Copy of the current network weights (exposed for tests/analysis)."""
        return dict(self._weights)

    @property
    def block_index(self) -> int:
        """Number of blocks started so far."""
        return self._block_index

    @property
    def current_block(self) -> Block | None:
        """The block currently being executed (read-only view for diagnostics)."""
        return self._current_block

    @property
    def explore_remaining(self) -> frozenset[int]:
        """Networks still queued for the initial/forced exploration."""
        return frozenset(self._explore_set)
