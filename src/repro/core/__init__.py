"""Smart EXP3 — the paper's primary contribution.

The algorithm (Section III / Algorithm 1) extends EXP3 with four mechanisms,
each implemented in its own module so they can be enabled independently (this
is how the Block EXP3 / Hybrid Block EXP3 / Smart EXP3 w/o Reset variants of
Table III are produced):

* :mod:`repro.core.blocking` — adaptive blocks of length ``ceil((1+β)^x)``.
* :mod:`repro.core.greedy_policy` — the initial exploration phase and the
  occasional deterministic greedy selection.
* :mod:`repro.core.switchback` — return to the previous network after a bad
  first slot in a new block.
* :mod:`repro.core.reset` — the minimal reset mechanism (periodic and drop
  triggered).
* :mod:`repro.core.smart_exp3` — the :class:`SmartEXP3Policy` that composes
  them on top of the EXP3 weight/probability updates.
"""

from repro.core.blocking import Block, BlockScheduler, SelectionType
from repro.core.config import SmartEXP3Config
from repro.core.greedy_policy import GainTracker, GreedyGate
from repro.core.reset import DropDetector, ResetPolicy
from repro.core.smart_exp3 import SmartEXP3Policy
from repro.core.switchback import BlockHistory, SwitchBackRule

__all__ = [
    "Block",
    "BlockHistory",
    "BlockScheduler",
    "DropDetector",
    "GainTracker",
    "GreedyGate",
    "ResetPolicy",
    "SelectionType",
    "SmartEXP3Config",
    "SmartEXP3Policy",
    "SwitchBackRule",
]
