"""Configuration of Smart EXP3 and its variants.

Default values follow Section V of the paper: β = 0.1, γ = b^(−1/3), 15-second
slots, reset when p_{i+} ≥ 0.75 and l_{i+} ≥ 40 or when a ≥15 % sustained drop
is observed, switch-back statistics from the last 8 slots of the previous
block.  The four feature flags produce the algorithm family of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SmartEXP3Config:
    """All tunables of :class:`repro.core.smart_exp3.SmartEXP3Policy`.

    Attributes
    ----------
    beta:
        Block growth factor; block length is ``ceil((1+β)^x)``.
    gamma_exponent:
        γ decays as ``b^(−gamma_exponent)`` with ``b`` the block index.
    fixed_gamma:
        If set, use this constant exploration rate instead of the decay.
    enable_initial_exploration:
        Explore every available network once (in random order) before using
        the probability distribution.
    enable_greedy:
        Occasionally pick the highest-average-gain network deterministically
        (with probability ½, when the greedy gate allows it).
    enable_switchback:
        Return to the previous network when the first slot of a new block is
        worse than the previous block.
    enable_reset:
        Perform minimal resets (periodic and on a sustained quality drop).
    reset_probability_threshold / reset_block_length_threshold:
        Periodic reset fires when the most likely network has probability at
        least the former and block length at least the latter.
    drop_fraction:
        Relative drop (0.15 = 15 %) that triggers a quality-drop reset.
    drop_min_connection_slots:
        The device must have been on the network for more than this many slots
        (before the recent window) for a drop to trigger a reset.
    drop_window_slots:
        Number of recent slots whose average is compared against the earlier
        part of the connection to decide a drop; averaging over several slots
        ignores changes "observed only during one time slot".
    switchback_window:
        Number of trailing slots of the previous block used by the switch-back
        rule (8 in the paper, to ignore stale data).
    greedy_probability:
        Probability of selecting greedily when the greedy gate allows it (an
        unbiased coin in the paper).
    removed_network_probability_threshold:
        Losing a network whose selection probability is at least this value
        triggers a reset ("significantly high probability" in the paper).
    """

    beta: float = 0.1
    gamma_exponent: float = 1.0 / 3.0
    fixed_gamma: float | None = None
    enable_initial_exploration: bool = True
    enable_greedy: bool = True
    enable_switchback: bool = True
    enable_reset: bool = True
    reset_probability_threshold: float = 0.75
    reset_block_length_threshold: int = 40
    drop_fraction: float = 0.15
    drop_min_connection_slots: int = 4
    drop_window_slots: int = 5
    switchback_window: int = 8
    greedy_probability: float = 0.5
    removed_network_probability_threshold: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")
        if self.gamma_exponent <= 0:
            raise ValueError("gamma_exponent must be positive")
        if self.fixed_gamma is not None and not 0.0 < self.fixed_gamma <= 1.0:
            raise ValueError(f"fixed_gamma must be in (0, 1], got {self.fixed_gamma}")
        if not 0.0 < self.reset_probability_threshold <= 1.0:
            raise ValueError("reset_probability_threshold must be in (0, 1]")
        if self.reset_block_length_threshold < 1:
            raise ValueError("reset_block_length_threshold must be >= 1")
        if not 0.0 < self.drop_fraction < 1.0:
            raise ValueError("drop_fraction must be in (0, 1)")
        if self.drop_min_connection_slots < 1:
            raise ValueError("drop_min_connection_slots must be >= 1")
        if self.drop_window_slots < 1:
            raise ValueError("drop_window_slots must be >= 1")
        if self.switchback_window < 1:
            raise ValueError("switchback_window must be >= 1")
        if not 0.0 < self.greedy_probability <= 1.0:
            raise ValueError("greedy_probability must be in (0, 1]")
        if not 0.0 < self.removed_network_probability_threshold <= 1.0:
            raise ValueError("removed_network_probability_threshold must be in (0, 1]")

    # --------------------------------------------------------------- variants
    @classmethod
    def full(cls) -> "SmartEXP3Config":
        """The complete Smart EXP3 algorithm."""
        return cls()

    @classmethod
    def without_reset(cls) -> "SmartEXP3Config":
        """Smart EXP3 w/o Reset (Table III)."""
        return cls(enable_reset=False)

    @classmethod
    def hybrid_block_exp3(cls) -> "SmartEXP3Config":
        """Hybrid Block EXP3 (Table III): blocks + exploration + greedy."""
        return cls(enable_reset=False, enable_switchback=False)

    @classmethod
    def block_exp3(cls) -> "SmartEXP3Config":
        """Block EXP3 (Table III): adaptive blocks only."""
        return cls(
            enable_reset=False,
            enable_switchback=False,
            enable_greedy=False,
            enable_initial_exploration=False,
        )

    def replace(self, **changes) -> "SmartEXP3Config":
        """Functional update (thin wrapper over :func:`dataclasses.replace`)."""
        return replace(self, **changes)
