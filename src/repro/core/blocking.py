"""Adaptive blocking: the block structure of Smart EXP3.

Each device partitions time into blocks and keeps the same network for a whole
block.  The length of a block on network ``i`` is ``ceil((1 + β)^x_i)`` where
``x_i`` counts how many blocks have already been spent on that network, so time
spent on the (eventually) preferred network grows geometrically and the number
of switches grows only logarithmically in the horizon (Theorem 2).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class SelectionType(enum.Enum):
    """How the network of a block was chosen.

    The probability ``p(b)`` used in the importance-weighted gain estimate
    depends on this (Section III / Table I, footnote 2).
    """

    EXPLORATION = "exploration"
    RANDOM = "random"
    RANDOM_AFTER_COIN = "random_after_coin"
    GREEDY = "greedy"
    SWITCH_BACK = "switch_back"


@dataclass
class Block:
    """State of the block currently being executed by a device."""

    index: int
    network_id: int
    length: int
    selection_type: SelectionType
    probability: float
    slot_gains: list[float] = field(default_factory=list)
    truncated: bool = False

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("block index must be >= 1")
        if self.length < 1:
            raise ValueError("block length must be >= 1")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"block probability must be in (0, 1], got {self.probability}")

    @property
    def slots_elapsed(self) -> int:
        return len(self.slot_gains)

    @property
    def total_gain(self) -> float:
        """Accumulated scaled gain over the block, in ``[0, length]``."""
        return float(sum(self.slot_gains))

    @property
    def is_complete(self) -> bool:
        return self.truncated or self.slots_elapsed >= self.length

    def record_gain(self, gain: float) -> None:
        if self.is_complete:
            raise RuntimeError("cannot record a gain on a completed block")
        if not 0.0 <= gain <= 1.0 + 1e-9:
            raise ValueError(f"per-slot gain must be in [0, 1], got {gain}")
        self.slot_gains.append(float(gain))

    def truncate(self) -> None:
        """End the block early (switch-back cuts a bad block to a single slot)."""
        self.truncated = True


class BlockScheduler:
    """Tracks per-network selection counts and derives block lengths."""

    def __init__(self, beta: float) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.beta = beta
        self._selection_counts: dict[int, int] = {}

    def selection_count(self, network_id: int) -> int:
        """Number of blocks already spent on ``network_id`` (``x_i``)."""
        return self._selection_counts.get(network_id, 0)

    def block_length(self, network_id: int) -> int:
        """Length of the *next* block on ``network_id``: ``ceil((1+β)^x_i)``."""
        exponent = self.selection_count(network_id)
        return int(math.ceil((1.0 + self.beta) ** exponent))

    def record_selection(self, network_id: int) -> int:
        """Consume one selection of ``network_id``; returns the block length used."""
        length = self.block_length(network_id)
        self._selection_counts[network_id] = self.selection_count(network_id) + 1
        return length

    def forget_network(self, network_id: int) -> None:
        """Drop the counter of a network that left the available set."""
        self._selection_counts.pop(network_id, None)

    def reset(self) -> None:
        """Reset every block length (part of the minimal reset mechanism)."""
        self._selection_counts.clear()

    def counts(self) -> dict[int, int]:
        """Copy of the per-network selection counters (for tests/analysis)."""
        return dict(self._selection_counts)

    # ------------------------------------------------------- batch-kernel I/O
    def export_counts(self, network_order: tuple[int, ...]) -> list[int]:
        """Selection counters as a dense row aligned with ``network_order``."""
        return [self.selection_count(network_id) for network_id in network_order]

    def load_counts(self, network_order: tuple[int, ...], counts) -> None:
        """Replace the counters from a dense row (inverse of export)."""
        self._selection_counts = {
            network_id: int(count)
            for network_id, count in zip(network_order, counts)
            if count
        }
