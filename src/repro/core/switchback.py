"""Switch-back mechanism of Smart EXP3.

Intuition (Section III): when the system is at (or near) Nash equilibrium, a
device that switches network observes a *lower* gain than before.  So if the
first slot of a new block is worse than what the device saw in the previous
block, it cuts the new block short and starts a special block that simply
re-associates with the previous network.  Two consecutive switch-backs are
forbidden to prevent ping-ponging, and the comparison uses only the last 8
slots of the previous block to ignore stale data (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BlockHistory:
    """Trailing per-slot gains of a finished block, for the switch-back rule."""

    network_id: int
    gains: list[float] = field(default_factory=list)
    window: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self.gains = [float(g) for g in self.gains[-self.window:]]

    def record(self, gain: float) -> None:
        self.gains.append(float(gain))
        if len(self.gains) > self.window:
            self.gains.pop(0)

    @property
    def has_data(self) -> bool:
        return bool(self.gains)

    @property
    def average_gain(self) -> float:
        if not self.gains:
            return 0.0
        return float(sum(self.gains) / len(self.gains))

    @property
    def last_gain(self) -> float:
        if not self.gains:
            return 0.0
        return float(self.gains[-1])

    def fraction_better_than(self, gain: float) -> float:
        """Fraction of recorded slots whose gain strictly exceeds ``gain``."""
        if not self.gains:
            return 0.0
        better = sum(1 for g in self.gains if g > gain + 1e-12)
        return better / len(self.gains)


class SwitchBackRule:
    """Decides whether to abandon the current block and return to the previous network."""

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def should_switch_back(
        self,
        first_slot_gain: float,
        current_network: int,
        previous_block: BlockHistory | None,
        current_block_is_switch_back: bool,
        previous_block_was_switch_back: bool,
    ) -> bool:
        """Evaluate the switch-back conditions after the first slot of a block.

        Parameters
        ----------
        first_slot_gain:
            Scaled gain observed in the first slot of the current block.
        current_network:
            Network of the current block.
        previous_block:
            Trailing history of the previous block (``None`` for the very first
            block of an execution).
        current_block_is_switch_back:
            True when the current block itself was started by a switch-back;
            switching back again would undo the correction (condition (b)).
        previous_block_was_switch_back:
            True when the previous block was a switch-back block; a further
            switch-back would create the ping-pong the paper explicitly avoids.
        """
        if previous_block is None or not previous_block.has_data:
            return False
        if current_block_is_switch_back or previous_block_was_switch_back:
            return False
        if previous_block.network_id == current_network:
            # Staying on the same network is not a switch; nothing to undo.
            return False
        worse_than_average = first_slot_gain < previous_block.average_gain - 1e-12
        worse_than_last = first_slot_gain < previous_block.last_gain - 1e-12
        mostly_better_before = previous_block.fraction_better_than(first_slot_gain) > 0.5
        return worse_than_average or worse_than_last or mostly_better_before
